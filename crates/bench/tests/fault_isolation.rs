//! End-to-end fault isolation: a buggy collector must never take down
//! the measured application.
//!
//! These tests run real workloads (EPCC syncbench, synthetic NPB
//! kernels) on a live runtime while the attached collector misbehaves
//! in the ways ISSUE'd from production incident reports:
//!
//! * a permanently-panicking callback fires with the team inside an
//!   implicit barrier — the dispatcher must catch every panic and
//!   quarantine the callback after the configured threshold;
//! * the trace drainer is killed mid-recording (panicking/erroring
//!   sink) while producers run under `--policy block` — producers must
//!   degrade to counted drops instead of livelocking;
//! * in both cases the workload must complete *with correct results*
//!   and the faults must be visible in `OMP_REQ_HEALTH`.
//!
//! Set `ORA_FAULT_SEED` to replay a specific seed.

use std::sync::Arc;

use collector::{RuntimeHandle, StreamError, StreamingTracer};
use omprt::OpenMp;
use ora_core::event::Event;
use ora_core::request::Request;
use ora_core::testutil::XorShift64;
use ora_trace::{DropPolicy, FaultMode, FaultSink, TraceConfig, TraceError};
use workloads::epcc::{self, EpccConfig};
use workloads::npb::Verification;
use workloads::{NpbClass, NpbKernel};

fn handle_for(rt: &OpenMp) -> RuntimeHandle {
    RuntimeHandle::discover_named(rt.symbol_name()).expect("runtime exports its symbol")
}

fn base_seed() -> u64 {
    std::env::var("ORA_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x6973_6f01)
}

/// Register a callback that panics on every invocation — the
/// "permanently buggy collector" from the issue. Fires on implicit
/// barrier begin, i.e. with the whole team inside the barrier.
fn inject_panicking_barrier_callback(handle: &RuntimeHandle) {
    handle
        .register(
            Event::ThreadBeginImplicitBarrier,
            Arc::new(|_| panic!("injected callback panic")),
        )
        .expect("register panicking callback");
}

#[test]
fn epcc_completes_under_a_permanently_panicking_barrier_callback() {
    let rt = OpenMp::with_threads(4);
    let handle = handle_for(&rt);
    handle.request_one(Request::Start).expect("start");
    inject_panicking_barrier_callback(&handle);

    let cfg = EpccConfig {
        outer_reps: 2,
        inner_reps: 32,
        delay_len: 64,
    };
    let results = epcc::run_all(&rt, &cfg);
    assert!(!results.is_empty(), "EPCC must run to completion");

    let health = handle.query_health().expect("OMP_REQ_HEALTH");
    assert!(
        health.callback_panics >= 1,
        "the panicking callback must have fired and been caught: {health:?}"
    );
    assert_eq!(
        health.callbacks_quarantined, 1,
        "the callback must be quarantined after the threshold: {health:?}"
    );
    // After quarantine the slot is empty again — the runtime healed.
    assert!(health.faulted());
}

#[test]
fn npb_results_stay_correct_with_panicking_callback_and_dead_drainer() {
    let kernel = NpbKernel::all()
        .into_iter()
        .find(|k| k.name.eq_ignore_ascii_case("cg"))
        .expect("CG kernel exists");

    let rt = OpenMp::with_threads(4);
    let handle = handle_for(&rt);
    // Streaming tracer under Block policy, sink dies right after the
    // 8-byte header: the drainer is killed almost immediately.
    let config = TraceConfig {
        policy: DropPolicy::Block,
        block_yield_limit: 1024,
        ..TraceConfig::default()
    };
    let tracer =
        StreamingTracer::attach(handle.clone(), config, FaultSink::new(8, FaultMode::Panic))
            .expect("attach tracer");
    inject_panicking_barrier_callback(&handle);

    kernel.run(&rt, NpbClass::S);
    match kernel.verify(rt.num_threads(), NpbClass::S) {
        Verification::Successful { .. } | Verification::NotApplicable => {}
        Verification::Failed { expected, got } => {
            panic!("workload corrupted by collector faults: expected {expected}, got {got}")
        }
    }

    // The fatal flush happens on the drainer's next epoch tick; give it
    // a deadline rather than assuming it already fired.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !tracer.is_degraded() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(tracer.is_degraded(), "the dead drainer must be observable");
    match tracer.finish() {
        Err(StreamError::Trace(TraceError::DrainerFailed { reason, .. })) => {
            assert!(reason.contains("injected sink panic"), "{reason:?}");
        }
        other => panic!("expected DrainerFailed, got {other:?}"),
    }

    let health = handle.query_health().expect("OMP_REQ_HEALTH");
    assert!(health.callback_panics >= 1, "{health:?}");
    assert_eq!(health.callbacks_quarantined, 1, "{health:?}");
}

#[test]
fn erroring_sink_under_block_policy_degrades_not_deadlocks() {
    let rt = OpenMp::with_threads(4);
    let handle = handle_for(&rt);
    let config = TraceConfig {
        policy: DropPolicy::Block,
        block_yield_limit: 1024,
        ..TraceConfig::default()
    };
    let tracer =
        StreamingTracer::attach(handle.clone(), config, FaultSink::new(64, FaultMode::Error))
            .expect("attach tracer");

    // Enough regions that the encoded stream must blow the 64-byte
    // budget and the drainer dies mid-run.
    let cfg = EpccConfig {
        outer_reps: 2,
        inner_reps: 32,
        delay_len: 64,
    };
    let results = epcc::run_all(&rt, &cfg);
    assert!(!results.is_empty());

    match tracer.finish() {
        Err(StreamError::Trace(TraceError::DrainerFailed { reason, .. })) => {
            assert!(reason.contains("injected sink fault"), "{reason:?}");
        }
        other => panic!("expected DrainerFailed, got {other:?}"),
    }
}

/// Seeded property: for random quarantine thresholds, a permanently
/// panicking callback is invoked *exactly threshold* times before the
/// dispatcher evicts it, and the workload keeps running throughout.
#[test]
fn quarantine_threshold_property_on_a_live_runtime() {
    let mut rng = XorShift64::new(base_seed());
    for round in 0..4 {
        let threshold = 1 + rng.below(5);
        let rt = OpenMp::with_threads(2);
        rt.set_quarantine_threshold(threshold);
        let handle = handle_for(&rt);
        handle.request_one(Request::Start).expect("start");
        // Fork fires exactly once per parallel region, on one thread —
        // a deterministic invocation count.
        handle
            .register(Event::Fork, Arc::new(|_| panic!("injected callback panic")))
            .expect("register");

        let regions = threshold + 2 + rng.below(3);
        for _ in 0..regions {
            rt.parallel(|_| {});
        }

        let health = handle.query_health().expect("OMP_REQ_HEALTH");
        assert_eq!(
            health.callback_panics, threshold,
            "round {round}: quarantine must fire exactly at the threshold ({threshold}): {health:?}"
        );
        assert_eq!(health.callbacks_quarantined, 1, "round {round}: {health:?}");
    }
}
