//! Seeded property tests for the `ora-meter` statistics and schema
//! (drawn from `ora_core::testutil::XorShift64` — deterministic, offline,
//! no proptest).

use ora_bench::meter::schema::{BenchDoc, ConfigResult, SchemaError, WorkloadResult};
use ora_bench::meter::stats::{
    analyze, bootstrap_ci_median, median, reject_outliers, SampleStats, StatPolicy,
};
use ora_bench::meter::{compare, CompareError, SyncConfig};
use ora_core::testutil::XorShift64;

/// Uniform f64 in [0, 1) from the shared deterministic generator.
fn unit_f64(rng: &mut XorShift64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A right-skewed synthetic "timing" sample: base + uniform jitter, with
/// an occasional multiplicative spike — the shape real repetition
/// timings have on a shared machine.
fn synthetic_timing(rng: &mut XorShift64, base: f64, jitter: f64) -> f64 {
    base + jitter * unit_f64(rng)
}

// ---------------------------------------------------------------------
// Bootstrap CI properties
// ---------------------------------------------------------------------

/// On symmetric-ish synthetic distributions, the 95% bootstrap CI of the
/// median should contain the *true* distribution median in well over 95%
/// of trials at these sample sizes (percentile bootstrap is conservative
/// here). We assert a loose 80% floor so the test is immune to seed luck
/// while still catching a broken interval (which drops to ~0-20%).
#[test]
fn bootstrap_ci_contains_true_median_on_synthetic_distributions() {
    let mut rng = XorShift64::new(0xC1_C1_C1);
    let trials = 200;
    for (base, jitter, n) in [(10.0, 2.0, 9), (1.0, 0.1, 15), (5.0, 5.0, 25)] {
        let true_median = base + jitter * 0.5;
        let mut contained = 0;
        for trial in 0..trials {
            let samples: Vec<f64> = (0..n)
                .map(|_| synthetic_timing(&mut rng, base, jitter))
                .collect();
            let (lo, hi) = bootstrap_ci_median(&samples, 400, 1000 + trial);
            assert!(lo <= hi);
            if lo <= true_median && true_median <= hi {
                contained += 1;
            }
        }
        let rate = contained as f64 / trials as f64;
        assert!(
            rate >= 0.80,
            "CI contained the true median in only {:.0}% of trials (base {base}, n {n})",
            rate * 100.0
        );
    }
}

#[test]
fn bootstrap_ci_brackets_the_sample_median_and_is_seed_stable() {
    let mut rng = XorShift64::new(7);
    for _ in 0..50 {
        let n = 3 + (rng.next_u64() % 20) as usize;
        let samples: Vec<f64> = (0..n)
            .map(|_| synthetic_timing(&mut rng, 2.0, 1.0))
            .collect();
        let med = median(&samples);
        let (lo, hi) = bootstrap_ci_median(&samples, 300, 99);
        assert!(
            lo <= med && med <= hi,
            "CI [{lo}, {hi}] excludes median {med}"
        );
        assert_eq!(
            (lo, hi),
            bootstrap_ci_median(&samples, 300, 99),
            "not deterministic"
        );
    }
}

// ---------------------------------------------------------------------
// MAD rejection properties
// ---------------------------------------------------------------------

/// Plant `k` large outliers in an otherwise tight sample: rejection must
/// drop every planted spike. A tightly clustered draw may legitimately
/// clip an edge inlier or two (the MAD fence shrinks with the cluster),
/// so we allow a small inlier casualty count but zero surviving spikes.
#[test]
fn mad_rejection_drops_every_planted_outlier() {
    let mut rng = XorShift64::new(0xBAD_CAFE);
    for _ in 0..100 {
        let n_inliers = 8 + (rng.next_u64() % 12) as usize;
        let n_outliers = 1 + (rng.next_u64() % 3) as usize;
        let base = 1.0 + unit_f64(&mut rng) * 10.0;
        let mut samples: Vec<f64> = (0..n_inliers)
            .map(|_| base * (1.0 + 0.01 * unit_f64(&mut rng)))
            .collect();
        for _ in 0..n_outliers {
            // Spikes 8-20× the base: far outside any 3.5-MAD fence.
            samples.push(base * (8.0 + 12.0 * unit_f64(&mut rng)));
        }
        let kept = reject_outliers(&samples, 3.5);
        assert!(
            kept.iter().all(|&s| s < base * 2.0),
            "a planted spike survived rejection"
        );
        assert!(
            kept.len() + 2 >= n_inliers,
            "rejection clipped {} of {n_inliers} inliers",
            n_inliers - kept.len()
        );
    }
}

#[test]
fn analyze_never_reports_more_rejections_than_min_keep_allows() {
    let mut rng = XorShift64::new(33);
    let policy = StatPolicy::default();
    for _ in 0..100 {
        let n = 2 + (rng.next_u64() % 12) as usize;
        let samples: Vec<f64> = (0..n)
            .map(|_| {
                if rng.chance(1, 4) {
                    100.0 + unit_f64(&mut rng)
                } else {
                    1.0 + 0.01 * unit_f64(&mut rng)
                }
            })
            .collect();
        let s = analyze(&samples, &policy);
        // Either enough samples survived, or nothing was rejected at all.
        assert!(
            s.reps >= policy.min_keep || s.rejected == 0,
            "min-repetition rule violated: reps {} rejected {}",
            s.reps,
            s.rejected
        );
        assert_eq!(s.reps + s.rejected, n);
        assert!(s.ci_lo <= s.median && s.median <= s.ci_hi);
    }
}

// ---------------------------------------------------------------------
// Schema round-trip properties
// ---------------------------------------------------------------------

fn random_stats(rng: &mut XorShift64) -> SampleStats {
    let median = 1e-4 + unit_f64(rng) * 1e-2;
    let spread = median * 0.1 * unit_f64(rng);
    SampleStats {
        reps: 3 + (rng.next_u64() % 20) as usize,
        rejected: (rng.next_u64() % 3) as usize,
        median,
        ci_lo: median - spread,
        ci_hi: median + spread,
        mad: spread * 0.5,
        min: median - 2.0 * spread,
        max: median + 2.0 * spread,
    }
}

fn random_doc(rng: &mut XorShift64) -> BenchDoc {
    let n_workloads = 1 + (rng.next_u64() % 4) as usize;
    let workloads = (0..n_workloads)
        .map(|i| {
            let configs = ["absent", "paused", "state", "trace"]
                .iter()
                .map(|key| {
                    let ratio = 1.0 + unit_f64(rng);
                    ConfigResult {
                        config: key.to_string(),
                        stats: random_stats(rng),
                        overhead_ratio: ratio,
                        ratio_ci_lo: ratio * 0.9,
                        ratio_ci_hi: ratio * 1.1,
                    }
                })
                .collect();
            WorkloadResult {
                name: format!("workload-{i}"),
                work_units: 1 + rng.next_u64() % 10_000,
                configs,
            }
        })
        .collect();
    BenchDoc {
        suite: if rng.chance(1, 2) { "epcc" } else { "npb" }.to_string(),
        scale: "quick".to_string(),
        threads: 1 + (rng.next_u64() % 8) as usize,
        warmup: (rng.next_u64() % 3) as usize,
        target_reps: 3 + (rng.next_u64() % 20) as usize,
        unit: "seconds/rep".to_string(),
        // Half the documents carry the sync-config block, half predate it
        // — the round-trip property must hold for both generations.
        sync_config: if rng.chance(1, 2) {
            Some(SyncConfig {
                barrier: if rng.chance(1, 2) { "central" } else { "tree" }.to_string(),
                spin_budget_short: rng.next_u64() % 1_000,
                spin_budget_long: rng.next_u64() % 100_000,
            })
        } else {
            None
        },
        workloads,
    }
}

#[test]
fn random_documents_round_trip_exactly() {
    let mut rng = XorShift64::new(0x5EED);
    for _ in 0..50 {
        let doc = random_doc(&mut rng);
        let json = doc.to_json();
        let parsed = BenchDoc::from_json(&json).expect("own serialization parses");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), json, "canonical form is a fixed point");
    }
}

/// Every strict prefix of a valid document must fail *typed* — either
/// `Truncated` (ran out of input) or, for a handful of cut points that
/// leave a syntactically complete-but-wrong prefix, `Syntax`/structural.
/// It must never parse successfully and never panic.
#[test]
fn truncated_documents_always_fail_typed() {
    let mut rng = XorShift64::new(0x7AC7);
    let doc = random_doc(&mut rng);
    let json = doc.to_json();
    for cut in 0..json.len() - 1 {
        if !json.is_char_boundary(cut) {
            continue;
        }
        let err = BenchDoc::from_json(&json[..cut])
            .expect_err("a strict prefix must not parse as a complete document");
        match err {
            SchemaError::Truncated { .. }
            | SchemaError::Syntax { .. }
            | SchemaError::MissingField(_)
            | SchemaError::WrongType { .. } => {}
            other => panic!("unexpected error class at cut {cut}: {other:?}"),
        }
    }
}

/// Corrupt single bytes all over the document: parsing must return a
/// typed error or a structurally different document — never panic.
#[test]
fn corrupted_documents_never_panic() {
    let mut rng = XorShift64::new(0xC0_44_07);
    let doc = random_doc(&mut rng);
    let json = doc.to_json();
    let garbage = [b'@', b'}', b'{', b'[', b'"', b'x', b'9'];
    for _ in 0..300 {
        let pos = (rng.next_u64() as usize) % json.len();
        if !json.is_char_boundary(pos) || pos + 1 >= json.len() {
            continue;
        }
        let mut bytes = json.clone().into_bytes();
        bytes[pos] = *rng.choose(&garbage);
        let Ok(corrupted) = String::from_utf8(bytes) else {
            continue;
        };
        // Must not panic; any Result is acceptable, but an Ok must be a
        // real document (the mutation hit a value, not the structure).
        let _ = BenchDoc::from_json(&corrupted);
    }
}

// ---------------------------------------------------------------------
// Compare properties over serialized documents
// ---------------------------------------------------------------------

#[test]
fn self_compare_after_round_trip_always_passes() {
    let mut rng = XorShift64::new(0xD1FF);
    for _ in 0..20 {
        let doc = random_doc(&mut rng);
        let reparsed = BenchDoc::from_json(&doc.to_json()).unwrap();
        let report = compare(&doc, &reparsed, 10.0).expect("comparable");
        assert!(
            report.passed(),
            "self-compare regressed: {:?}",
            report.regressions
        );
        assert_eq!(report.cells, doc.workloads.len() * 4);
    }
}

#[test]
fn planted_ratio_regression_is_always_caught() {
    let mut rng = XorShift64::new(0x0DD);
    for _ in 0..20 {
        let old = random_doc(&mut rng);
        let mut new = old.clone();
        // Plant a 50% overhead-ratio regression with a clearly disjoint
        // interval in one random non-absent cell.
        let w = (rng.next_u64() as usize) % new.workloads.len();
        let c = 1 + (rng.next_u64() as usize) % 3;
        {
            let cell = &mut new.workloads[w].configs[c];
            cell.overhead_ratio *= 1.5;
            cell.ratio_ci_lo = cell.overhead_ratio * 0.95;
            cell.ratio_ci_hi = cell.overhead_ratio * 1.05;
        }
        {
            let base = &mut old.clone();
            let old_cell = &mut base.workloads[w].configs[c];
            old_cell.ratio_ci_lo = old_cell.overhead_ratio * 0.95;
            old_cell.ratio_ci_hi = old_cell.overhead_ratio * 1.05;
            // Round-trip both through JSON so the gate sees what CI sees.
            let old_doc = BenchDoc::from_json(&base.to_json()).unwrap();
            let new_doc = BenchDoc::from_json(&new.to_json()).unwrap();
            let report = compare(&old_doc, &new_doc, 10.0).expect("comparable");
            assert!(
                !report.passed(),
                "planted +50% regression in {}/{} not caught",
                old_doc.workloads[w].name,
                old_doc.workloads[w].configs[c].config
            );
        }
    }
}

#[test]
fn dropping_a_workload_is_incomparable_not_a_pass() {
    let mut rng = XorShift64::new(0xFADE);
    let old = random_doc(&mut rng);
    let mut new = old.clone();
    new.workloads.pop();
    if new.workloads.is_empty() {
        return; // single-workload draw; nothing to drop
    }
    assert!(matches!(
        compare(&old, &new, 10.0).unwrap_err(),
        CompareError::Incomparable { .. }
    ));
}
