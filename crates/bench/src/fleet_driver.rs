//! Multi-process fleet profiling driver (`omp_prof serve` / `fleet`).
//!
//! The paper profiles hybrid MPI+OpenMP codes by running one collector
//! per MPI process and merging per-rank traces offline. This module is
//! the *online* version: `run_fleet` spawns N child rank processes
//! (re-invoking the current executable with the hidden `fleet-rank`
//! subcommand), each running its Table II share of an NPB-MZ workload
//! under a streaming tracer whose [`SocketSink`] streams straight into
//! an in-process aggregator daemon. Every rank also tees its stream to
//! a local `rank<i>.oratrace` file, which is what lets the driver prove
//! the online merge honest: the daemon's export must be byte-identical
//! to offline `merge_ranks` over the teed files.
//!
//! Fault injection for stress runs: `kill_rank` makes one child vanish
//! mid-stream without FIN or footer (a simulated rank crash — its lane
//! degrades, the others must be unaffected), and `slow` delays every
//! chunk ACK daemon-side so the producers' bounded in-flight windows
//! actually backpressure.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use collector::{clock, RuntimeHandle, StreamingTracer};
use omprt::OpenMp;
use ora_fleet::{
    timeline_bytes, Daemon, DaemonConfig, Endpoint, FleetListener, FleetReport, SocketSink,
};
use ora_trace::format::{encode_footer, encode_header, Footer};
use ora_trace::{merge_ranks, RankedEvent, TraceConfig, TraceReader};
use workloads::mz::MzBenchmark;
use workloads::NpbClass;

/// Everything `omp_prof fleet` parses from its command line.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Child rank processes to spawn.
    pub ranks: usize,
    /// OpenMP threads per rank.
    pub threads: usize,
    /// Multi-zone workload key (`bt-mz` | `lu-mz` | `sp-mz` | `tasks-mz`).
    pub workload: String,
    /// Problem class.
    pub class: NpbClass,
    /// Explicit daemon endpoint; `None` means a Unix socket in `out_dir`.
    pub endpoint: Option<String>,
    /// Where rank trace files (and the default socket) live.
    pub out_dir: PathBuf,
    /// Rank to kill mid-stream (crash injection), if any.
    pub kill_rank: Option<usize>,
    /// Injected per-chunk ACK delay (slow-consumer injection).
    pub slow: Duration,
    /// Producer in-flight chunk window.
    pub window: u64,
}

/// Resolve a multi-zone benchmark by CLI key.
pub fn mz_by_name(name: &str) -> Option<MzBenchmark> {
    match name.to_ascii_lowercase().replace('_', "-").as_str() {
        "bt-mz" | "bt" => Some(MzBenchmark::bt_mz()),
        "lu-mz" | "lu" => Some(MzBenchmark::lu_mz()),
        "sp-mz" | "sp" => Some(MzBenchmark::sp_mz()),
        "tasks-mz" | "tasks" => Some(MzBenchmark::tasks_mz()),
        _ => None,
    }
}

/// The `--class` key for re-invoking ourselves.
pub fn class_key(class: NpbClass) -> &'static str {
    match class {
        NpbClass::S => "s",
        NpbClass::W => "w",
        NpbClass::Bsim => "b",
    }
}

/// A valid, empty trace: header followed by an empty footer. Stands in
/// for a killed rank's (truncated, unreadable) trace file so rank
/// indices still line up in the offline merge.
pub fn placeholder_trace() -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_header(&mut bytes);
    encode_footer(&mut bytes, &Footer::default());
    bytes
}

/// Child-process body for the hidden `fleet-rank` subcommand: connect
/// to the daemon, stream `rank`'s share of `workload` through a
/// [`SocketSink`] teed to `trace_out`, then close with the FIN
/// handshake. With `die_early` the process exits abruptly after the
/// solve — no footer, no FIN — simulating a rank crash.
#[allow(clippy::too_many_arguments)]
pub fn run_rank_child(
    endpoint: &Endpoint,
    rank: usize,
    ranks: usize,
    threads: usize,
    workload: &str,
    class: NpbClass,
    trace_out: &Path,
    window: u64,
    die_early: bool,
) -> Result<(), String> {
    let bench = mz_by_name(workload).ok_or_else(|| format!("unknown workload '{workload}'"))?;
    let rt = OpenMp::with_threads(threads);
    let handle = RuntimeHandle::discover_named(rt.symbol_name())
        .ok_or_else(|| "runtime symbol not discoverable".to_string())?;
    let sink = SocketSink::connect(endpoint, rank as u64, clock::TICKS_PER_SEC, window)
        .map_err(|e| format!("connect {endpoint}: {e}"))?
        .tee(trace_out)
        .map_err(|e| format!("tee {}: {e}", trace_out.display()))?;
    let tracer = StreamingTracer::attach(handle, TraceConfig::default(), sink)
        .map_err(|e| format!("attach tracer: {e}"))?;

    let result = bench.run_rank(&rt, rank, ranks, class);
    // Workers fire trailing end-of-barrier events asynchronously.
    std::thread::sleep(Duration::from_millis(100));
    if die_early {
        // Crash injection: vanish mid-stream. The daemon sees the
        // connection drop with no FIN and degrades only this lane.
        std::process::exit(9);
    }
    let (sink, stats) = tracer.finish().map_err(|e| format!("finish trace: {e}"))?;
    let fin = sink
        .finish(
            stats.drained() + stats.dropped(),
            stats.drained(),
            stats.dropped(),
        )
        .map_err(|e| format!("FIN handshake: {e}"))?;
    println!(
        "rank {rank}: {} zone-step calls | streamed {} records ({} dropped) | daemon stored {}",
        result.calls,
        stats.drained(),
        stats.dropped(),
        fin.stored
    );
    Ok(())
}

/// Run a standalone aggregator (`omp_prof serve`): accept connections
/// on `endpoint` until `ranks` lanes reach a terminal state, then
/// report.
pub fn serve(endpoint: &Endpoint, ranks: u64, slow: Duration) -> Result<FleetReport, String> {
    let listener = FleetListener::bind(endpoint).map_err(|e| format!("bind {endpoint}: {e}"))?;
    let mut daemon = Daemon::new(DaemonConfig { slow_chunk: slow });
    let stop = AtomicBool::new(false);
    daemon
        .run_listener(&listener, &stop, Some(ranks))
        .map_err(|e| format!("listener: {e}"))?;
    Ok(daemon.finish())
}

/// Orchestrate a full fleet run: daemon + N spawned rank children.
/// Returns the daemon's report and whether its export came out
/// byte-identical to the offline merge of the teed rank traces.
pub fn run_fleet(cfg: &FleetConfig) -> Result<(FleetReport, bool), String> {
    if cfg.kill_rank.is_some_and(|k| k >= cfg.ranks) {
        return Err(format!(
            "--kill-rank {} out of range for {} ranks",
            cfg.kill_rank.unwrap(),
            cfg.ranks
        ));
    }
    std::fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| format!("create {}: {e}", cfg.out_dir.display()))?;
    let endpoint = match &cfg.endpoint {
        Some(spec) => Endpoint::parse(spec),
        None => Endpoint::Unix(cfg.out_dir.join("fleet.sock")),
    };
    let listener = FleetListener::bind(&endpoint).map_err(|e| format!("bind {endpoint}: {e}"))?;
    // Re-resolve so `tcp:127.0.0.1:0` becomes the real bound port.
    let endpoint = listener
        .local_endpoint()
        .map_err(|e| format!("local endpoint: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let until = cfg.ranks as u64;
    let slow = cfg.slow;
    let daemon_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut daemon = Daemon::new(DaemonConfig { slow_chunk: slow });
            let served = daemon.run_listener(&listener, &stop, Some(until));
            (daemon.finish(), served)
        })
    };

    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut children = Vec::new();
    for rank in 0..cfg.ranks {
        let mut cmd = Command::new(&exe);
        cmd.arg("fleet-rank")
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--ranks")
            .arg(cfg.ranks.to_string())
            .arg("--threads")
            .arg(cfg.threads.to_string())
            .arg("--workload")
            .arg(&cfg.workload)
            .arg("--class")
            .arg(class_key(cfg.class))
            .arg("--endpoint")
            .arg(endpoint.to_string())
            .arg("--window")
            .arg(cfg.window.to_string())
            .arg("--trace-out")
            .arg(rank_trace_path(&cfg.out_dir, rank));
        if cfg.kill_rank == Some(rank) {
            cmd.arg("--die-early");
        }
        children.push((
            rank,
            cmd.spawn().map_err(|e| format!("spawn rank {rank}: {e}"))?,
        ));
    }
    for (rank, mut child) in children {
        let status = child.wait().map_err(|e| format!("wait rank {rank}: {e}"))?;
        let killed = cfg.kill_rank == Some(rank);
        if !status.success() && !killed {
            stop.store(true, Ordering::Release);
            let _ = daemon_thread.join();
            return Err(format!("rank {rank} failed: {status}"));
        }
    }
    // All lanes are terminal by now (FIN is synchronous; a killed rank's
    // EOF lands when its process exits) — the stop flag is only a
    // fallback so the listener can never spin forever.
    stop.store(true, Ordering::Release);
    let (report, served) = daemon_thread
        .join()
        .map_err(|_| "daemon thread panicked".to_string())?;
    served.map_err(|e| format!("listener: {e}"))?;

    let identical = export_matches_offline(&report, &cfg.out_dir, cfg.ranks, cfg.kill_rank)?;
    Ok((report, identical))
}

/// Where rank `rank`'s teed trace file lives under `out_dir`.
pub fn rank_trace_path(out_dir: &Path, rank: usize) -> PathBuf {
    out_dir.join(format!("rank{rank}.oratrace"))
}

/// Compare the daemon's export against the offline `merge_ranks` of the
/// teed per-rank trace files. A killed rank left no readable trace
/// (header but no footer): it is stood in for by an empty placeholder
/// offline and filtered out of the online store, so the comparison
/// covers exactly the surviving ranks, at the same rank indices.
pub fn export_matches_offline(
    report: &FleetReport,
    out_dir: &Path,
    ranks: usize,
    kill_rank: Option<usize>,
) -> Result<bool, String> {
    let mut readers = Vec::with_capacity(ranks);
    for rank in 0..ranks {
        if kill_rank == Some(rank) {
            readers.push(
                TraceReader::from_bytes(placeholder_trace())
                    .map_err(|e| format!("placeholder trace: {e}"))?,
            );
        } else {
            let path = rank_trace_path(out_dir, rank);
            readers.push(TraceReader::open(&path).map_err(|e| format!("{}: {e}", path.display()))?);
        }
    }
    let offline = merge_ranks(&readers).map_err(|e| format!("offline merge: {e}"))?;
    let online = match kill_rank {
        None => report.store.export(),
        Some(k) => {
            let surviving: Vec<RankedEvent> = report
                .store
                .records()
                .iter()
                .copied()
                .filter(|e| e.rank != k)
                .collect();
            timeline_bytes(&surviving)
        }
    };
    Ok(online == timeline_bytes(&offline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_keys_resolve() {
        assert_eq!(mz_by_name("bt-mz").unwrap().name, "BT-MZ");
        assert_eq!(mz_by_name("LU_MZ").unwrap().name, "LU-MZ");
        assert_eq!(mz_by_name("sp").unwrap().name, "SP-MZ");
        assert!(mz_by_name("cg").is_none());
    }

    #[test]
    fn placeholder_trace_is_a_valid_empty_trace() {
        let reader = TraceReader::from_bytes(placeholder_trace()).unwrap();
        assert_eq!(reader.record_count(), 0);
        assert_eq!(reader.dropped(), 0);
        assert!(merge_ranks(&[reader]).unwrap().is_empty());
    }
}
