//! `omp_prof` — a psrun-style command-line front end: run a built-in
//! workload under a chosen ORA collector tool and print its report.
//!
//! ```text
//! omp_prof --workload cg --tool profile   --threads 4 --class s
//! omp_prof --workload lu-hp --tool trace  --threads 2
//! omp_prof --workload bt --tool states
//! omp_prof --workload sp --tool selective
//! omp_prof --workload epcc --tool profile
//! ```

use collector::{
    report, Profiler, RuntimeHandle, SelectivePolicy, SelectiveProfiler, StateTimer, Tracer,
};
use omprt::OpenMp;
use workloads::epcc::{self, EpccConfig};
use workloads::{NpbClass, NpbKernel};

fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

fn run_workload(rt: &OpenMp, workload: &str, class: NpbClass) {
    match workload {
        "epcc" => {
            let cfg = EpccConfig {
                outer_reps: 2,
                inner_reps: 64,
                delay_len: 64,
            };
            for (d, stat) in epcc::run_all(rt, &cfg) {
                println!(
                    "  epcc {:<12} overhead/instance {:>9.3} us",
                    d.name(),
                    stat.mean * 1e6
                );
            }
        }
        name => {
            let kernel = NpbKernel::all()
                .into_iter()
                .find(|k| k.name.eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    eprintln!("unknown workload '{name}' — use bt|ep|sp|mg|ft|cg|lu-hp|lu|epcc");
                    std::process::exit(2);
                });
            println!(
                "running {} (class {:?}: {} regions, {} region calls)",
                kernel.name,
                class,
                kernel.region_count(),
                kernel.region_calls(class)
            );
            let checksum = kernel.run(rt, class);
            println!("checksum: {checksum:.6}");
            if std::env::args().any(|a| a == "--verify") {
                match kernel.verify(rt.num_threads(), class) {
                    workloads::npb::Verification::Successful { rel_error } => {
                        println!("verification: SUCCESSFUL (rel err {rel_error:.2e})")
                    }
                    workloads::npb::Verification::Failed { expected, got } => {
                        println!("verification: FAILED (expected {expected}, got {got})")
                    }
                    workloads::npb::Verification::NotApplicable => {
                        println!("verification: N/A (partition-dependent kernel)")
                    }
                }
            }
        }
    }
}

fn main() {
    let workload = arg("--workload", "cg");
    let tool = arg("--tool", "profile");
    let threads: usize = arg("--threads", "2").parse().unwrap_or(2);
    let class = match arg("--class", "s").as_str() {
        "w" | "W" => NpbClass::W,
        "b" | "B" => NpbClass::Bsim,
        _ => NpbClass::S,
    };

    let rt = OpenMp::with_threads(threads);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).expect("runtime symbol");

    match tool.as_str() {
        "profile" => {
            let p = Profiler::attach_default(handle).unwrap();
            run_workload(&rt, &workload, class);
            let profile = p.finish();
            println!("\n{}", profile.render());
        }
        "trace" => {
            let t = Tracer::attach(handle, 1_000_000).unwrap();
            run_workload(&rt, &workload, class);
            std::thread::sleep(std::time::Duration::from_millis(100));
            let trace = t.finish();
            println!("\nfirst 30 records:\n{}", trace.render_head(30));
            println!(
                "{}",
                report::table(
                    &["event", "count"],
                    ora_core::event::ALL_EVENTS
                        .iter()
                        .filter(|e| trace.count(**e) > 0)
                        .map(|e| vec![e.name().to_string(), trace.count(*e).to_string()]),
                )
            );
            if std::env::args().any(|a| a == "--csv") {
                println!("{}", trace.to_csv());
            }
        }
        "states" => {
            let t = StateTimer::attach(handle).unwrap();
            run_workload(&rt, &workload, class);
            std::thread::sleep(std::time::Duration::from_millis(100));
            let profile = t.finish();
            println!("\n{}", profile.render());
        }
        "suite" => {
            let t =
                collector::ToolSuite::attach(handle, collector::SuiteConfig::default()).unwrap();
            run_workload(&rt, &workload, class);
            std::thread::sleep(std::time::Duration::from_millis(100));
            println!("\n{}", t.finish().render());
        }
        "selective" => {
            let p = SelectiveProfiler::attach(handle, SelectivePolicy::default()).unwrap();
            run_workload(&rt, &workload, class);
            let r = p.finish();
            println!(
                "\njoins {} | sampled {} | skipped small {} | deduped {} | savings {:.1}%",
                r.joins,
                r.sampled,
                r.skipped_small,
                r.skipped_dedup,
                r.savings() * 100.0
            );
            println!("\ncall tree:\n{}", r.call_tree.render());
        }
        other => {
            eprintln!("unknown tool '{other}' — use profile|trace|states|selective|suite");
            std::process::exit(2);
        }
    }
}
