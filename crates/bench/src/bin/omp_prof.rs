//! `omp_prof` — a psrun-style command-line front end: run a built-in
//! workload under a chosen ORA collector tool and print its report.
//!
//! ```text
//! omp_prof --workload cg --tool profile   --threads 4 --class s
//! omp_prof --workload lu-hp --tool trace  --threads 2
//! omp_prof --workload bt --tool states
//! omp_prof --workload sp --tool selective
//! omp_prof --workload epcc --tool profile
//! ```
//!
//! The `trace` subcommand exposes the `ora-trace` streaming pipeline:
//! record a workload's full event stream to a binary trace file, then
//! query it offline — no re-run needed:
//!
//! ```text
//! omp_prof trace record --workload epcc --threads 2 --out run.oratrace
//! omp_prof trace report --in run.oratrace
//! omp_prof trace report --in run.oratrace --thread 1 --head 20
//! omp_prof trace report --in run.oratrace --region 3 --from-us 100 --to-us 900
//! ```
//!
//! The `bench` subcommand is the `ora-meter` front end: measure every
//! meter workload under the five collector configurations and emit
//! versioned `BENCH_<suite>.json` documents, or gate a new run against a
//! baseline:
//!
//! ```text
//! omp_prof bench run --quick --out-dir results
//! omp_prof bench run --full --suite npb
//! omp_prof bench compare results/baselines/BENCH_epcc.json BENCH_epcc.json --threshold 10
//! ```
//!
//! `bench compare` exits 0 when the gate passes, 1 on a regression, and
//! 2 on unusable input (parse errors, mismatched documents).
//!
//! The `health` and `suite` subcommands are the fault-isolation harness:
//! `health` runs a short diagnostic workload — optionally with injected
//! collector faults — and reports the runtime's `OMP_REQ_HEALTH`
//! counters plus the trace drainer's supervision state; `suite` runs
//! every built-in workload under a streaming tracer and verifies that
//! results stay correct even while the collector is failing:
//!
//! ```text
//! omp_prof health
//! omp_prof health --inject-panic-cb --kill-drainer --policy block
//! omp_prof suite --threads 4 --inject-panic-cb --kill-drainer --policy block
//! ```
//!
//! `health` exits 0 when no faults were recorded and 3 when faults were
//! caught and isolated (the application still completed — that is the
//! point). `suite` exits 0 as long as every workload completes with
//! correct results, faults or not.
//!
//! The `fuzz` subcommand is the oracle-differential scenario fuzzer
//! (`ora-fuzz`): generate seeded region programs, execute each under
//! every collector rung, and diff results, thread states, health
//! counters and trace accounting against a sequential oracle. Failing
//! seeds are minimized and written out as replayable case files:
//!
//! ```text
//! omp_prof fuzz --seeds 200                   # sweep seeds 0..200
//! omp_prof fuzz --seeds 50 --start 1000       # sweep seeds 1000..1050
//! omp_prof fuzz --case tests/fuzz_cases/claimer_tail_small_trip.case
//! omp_prof fuzz --cases tests/fuzz_cases      # replay the curated suite
//! omp_prof fuzz --seeds 500 --out fuzz-out    # persist failing cases
//! omp_prof fuzz --seeds 50 --rungs governed   # sweep one rung only
//! ```
//!
//! `fuzz` exits 0 when every scenario matched the oracle on every rung,
//! 1 when any mismatch was found, and 2 on unusable input.
//!
//! The `serve` and `fleet` subcommands are the multi-process (hybrid
//! MPI+OpenMP) profiling front end (`ora-fleet`): `serve` runs the
//! trace-aggregation daemon standalone; `fleet` spawns N child rank
//! processes each streaming an NPB-MZ rank's trace into an in-process
//! daemon, then reports the merged fleet profile and proves the online
//! merge byte-identical to the offline `merge_ranks` of the ranks' teed
//! trace files:
//!
//! ```text
//! omp_prof serve --endpoint unix:/tmp/fleet.sock --ranks 4
//! omp_prof fleet --ranks 8 --threads 2 --workload lu-mz
//! omp_prof fleet --ranks 4 --kill-rank 2          # crash injection
//! omp_prof fleet --ranks 4 --slow-us 200          # slow-consumer injection
//! ```
//!
//! `fleet` exits 0 when the export matched the offline merge and every
//! surviving lane's drop/ACK accounting reconciled, 1 otherwise.
//! (`fleet-rank` is the hidden per-child entry point `fleet` spawns.)
//!
//! `trace report` also accepts multiple per-rank traces — `--rank FILE`
//! repeated, or `--ranks-dir DIR` for every `*.oratrace` in a directory
//! — and prints the merged `(tick, gtid, seq, rank)` timeline.

use std::sync::Arc;

use collector::{
    report, Profiler, RuntimeHandle, SelectivePolicy, SelectiveProfiler, StateTimer, StreamError,
    StreamingTracer, Tracer,
};
use omprt::OpenMp;
use ora_core::event::Event;
use ora_trace::{
    DropPolicy, FaultMode, FaultSink, FileSink, MemorySink, TraceConfig, TraceError, TraceEvent,
    TraceReader, TraceSink,
};
use workloads::epcc::{self, EpccConfig};
use workloads::{NpbClass, NpbKernel};

fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == name)
        .map(|w| w[1].clone())
        .unwrap_or_else(|| default.to_string())
}

fn run_workload(rt: &OpenMp, workload: &str, class: NpbClass) {
    match workload {
        "epcc" => {
            let cfg = EpccConfig {
                outer_reps: 2,
                inner_reps: 64,
                delay_len: 64,
            };
            for (d, stat) in epcc::run_all(rt, &cfg) {
                println!(
                    "  epcc {:<12} overhead/instance {:>9.3} us",
                    d.name(),
                    stat.mean * 1e6
                );
            }
        }
        name => {
            let kernel = NpbKernel::all()
                .into_iter()
                .find(|k| k.name.eq_ignore_ascii_case(name))
                .unwrap_or_else(|| {
                    eprintln!("unknown workload '{name}' — use bt|ep|sp|mg|ft|cg|lu-hp|lu|epcc");
                    std::process::exit(2);
                });
            println!(
                "running {} (class {:?}: {} regions, {} region calls)",
                kernel.name,
                class,
                kernel.region_count(),
                kernel.region_calls(class)
            );
            let checksum = kernel.run(rt, class);
            println!("checksum: {checksum:.6}");
            if std::env::args().any(|a| a == "--verify") {
                match kernel.verify(rt.num_threads(), class) {
                    workloads::npb::Verification::Successful { rel_error } => {
                        println!("verification: SUCCESSFUL (rel err {rel_error:.2e})")
                    }
                    workloads::npb::Verification::Failed { expected, got } => {
                        println!("verification: FAILED (expected {expected}, got {got})")
                    }
                    workloads::npb::Verification::NotApplicable => {
                        println!("verification: N/A (partition-dependent kernel)")
                    }
                }
            }
        }
    }
}

/// `trace record`: run a workload with a streaming tracer writing the
/// full event stream to a binary trace file.
fn trace_record() {
    let workload = arg("--workload", "epcc");
    let threads: usize = arg("--threads", "2").parse().unwrap_or(2);
    let class = npb_class(&arg("--class", "s"));
    let out = arg("--out", "run.oratrace");
    let policy = drop_policy(&arg("--policy", "newest"));
    let config = TraceConfig {
        policy,
        ..TraceConfig::default()
    };

    let rt = OpenMp::with_threads(threads);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).expect("runtime symbol");
    let sink = FileSink::create(&out).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        std::process::exit(1);
    });
    let tracer = StreamingTracer::attach(handle, config, sink).expect("attach tracer");
    run_workload(&rt, &workload, class);
    // Workers fire trailing end-of-barrier events asynchronously.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let region_calls = tracer.region_calls();
    let (sink, stats) = tracer.finish().expect("finish trace");
    drop(sink.into_file().expect("flush trace file"));
    let size = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("trace written: {out}");
    println!(
        "  region calls {} | records {} | dropped {} | chunks {} | {} bytes ({:.1} B/record)",
        region_calls,
        stats.drained(),
        stats.dropped(),
        stats.chunks,
        size,
        size as f64 / stats.drained().max(1) as f64,
    );
    // Under `--policy block` the contract is losslessness: the producer
    // stalls rather than drops. Drops still being reported means the
    // pipeline was misconfigured (e.g. drainer stopped before the rings
    // emptied) — the trace silently lies, so the exit code must not.
    if policy == DropPolicy::Block && stats.dropped() > 0 {
        eprintln!(
            "error: {} record(s) dropped under --policy block; the trace is incomplete",
            stats.dropped()
        );
        std::process::exit(1);
    }
}

/// `trace analyze`: replay a recorded trace and report detrimental
/// task-parallel patterns (starvation windows, serialized spawn,
/// barrier convoys) with tick-ranged evidence. Accepts a single trace
/// (`--in`), per-rank traces (`--rank`/`--ranks-dir`, merged first),
/// or a fleet timeline export (`--timeline`).
fn trace_analyze() {
    use ora_trace::analyze::{self, AnalyzeConfig};

    let mut cfg = AnalyzeConfig::default();
    cfg.min_tasks = arg("--min-tasks", &cfg.min_tasks.to_string())
        .parse()
        .unwrap_or(cfg.min_tasks);
    cfg.starvation_frac = arg("--starvation-frac", &cfg.starvation_frac.to_string())
        .parse()
        .unwrap_or(cfg.starvation_frac);
    cfg.dominance_frac = arg("--dominance-frac", &cfg.dominance_frac.to_string())
        .parse()
        .unwrap_or(cfg.dominance_frac);

    let argv: Vec<String> = std::env::args().collect();
    let mut rank_files: Vec<String> = argv
        .windows(2)
        .filter(|w| w[0] == "--rank")
        .map(|w| w[1].clone())
        .collect();
    let ranks_dir = arg("--ranks-dir", "");
    if !ranks_dir.is_empty() {
        let mut paths: Vec<_> = std::fs::read_dir(&ranks_dir)
            .unwrap_or_else(|e| {
                eprintln!("cannot read {ranks_dir}: {e}");
                std::process::exit(1);
            })
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("oratrace"))
            .collect();
        paths.sort();
        rank_files.extend(paths.iter().map(|p| p.display().to_string()));
    }

    let timeline = arg("--timeline", "");
    let report = if !timeline.is_empty() {
        let bytes = std::fs::read(&timeline).unwrap_or_else(|e| {
            eprintln!("cannot read {timeline}: {e}");
            std::process::exit(1);
        });
        let events = analyze::decode_timeline(&bytes).unwrap_or_else(|e| {
            eprintln!("{timeline} is not a fleet timeline export: {e}");
            std::process::exit(1);
        });
        println!(
            "analyzing fleet timeline {timeline} ({} records)",
            events.len()
        );
        analyze::analyze(&events, &cfg)
    } else if !rank_files.is_empty() {
        let readers: Vec<TraceReader> = rank_files
            .iter()
            .map(|f| {
                TraceReader::open(f).unwrap_or_else(|e| {
                    eprintln!("cannot read {f}: {e}");
                    std::process::exit(1);
                })
            })
            .collect();
        let merged = ora_trace::merge_ranks(&readers).unwrap_or_else(|e| {
            eprintln!("merge failed: {e}");
            std::process::exit(1);
        });
        println!(
            "analyzing {} rank trace(s) ({} merged records)",
            rank_files.len(),
            merged.len()
        );
        analyze::analyze(&merged, &cfg)
    } else {
        let input = arg("--in", "run.oratrace");
        let reader = TraceReader::open(&input).unwrap_or_else(|e| {
            eprintln!("cannot read {input}: {e}");
            std::process::exit(1);
        });
        println!("analyzing {input} ({} records)", reader.record_count());
        analyze::analyze_reader(&reader, &cfg).unwrap_or_else(|e| {
            eprintln!("trace is damaged: {e}");
            std::process::exit(1);
        })
    };
    print!("{}", report.render());
    // Findings are an analysis outcome, not an error — but scripts want
    // to gate on them, so surface "patterns found" as exit 4.
    if !report.findings.is_empty() {
        std::process::exit(4);
    }
}

/// `bench run`: the `ora-meter` measurement loop (see `ora_bench::meter`).
fn bench_run() {
    use ora_bench::meter::{runner, RunnerConfig};
    use workloads::meterwork::MeterSuite;

    let has = |name: &str| std::env::args().any(|a| a == name);
    let mut cfg = if has("--full") {
        RunnerConfig::full()
    } else {
        // --quick is the default.
        RunnerConfig::quick()
    };
    cfg.threads = arg("--threads", &cfg.threads.to_string())
        .parse()
        .unwrap_or(cfg.threads);
    cfg.reps = arg("--reps", &cfg.reps.to_string())
        .parse()
        .unwrap_or(cfg.reps);
    let out_dir = arg("--out-dir", ".");
    let suites: Vec<MeterSuite> = match arg("--suite", "all").as_str() {
        "all" => vec![
            MeterSuite::Epcc,
            MeterSuite::Npb,
            MeterSuite::Sync,
            MeterSuite::Dispatch,
            MeterSuite::Tasks,
            MeterSuite::Topo,
        ],
        key => match MeterSuite::from_key(key) {
            Some(s) => vec![s],
            None => {
                eprintln!("unknown suite '{key}' — use epcc|npb|sync|dispatch|tasks|topo|all");
                std::process::exit(2);
            }
        },
    };

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("cannot create {out_dir}: {e}");
        std::process::exit(2);
    });

    for suite in suites {
        println!(
            "ora-meter: suite {} at scale {} ({} thread(s), {} warmup + {} rep(s))",
            suite.key(),
            cfg.scale.key(),
            cfg.threads,
            cfg.warmup,
            cfg.reps
        );
        let doc = runner::run_suite_with_progress(suite, &cfg, |line| println!("{line}"))
            .unwrap_or_else(|e| {
                eprintln!("meter run failed: {e}");
                std::process::exit(2);
            });
        let path = format!("{out_dir}/BENCH_{}.json", suite.key());
        std::fs::write(&path, doc.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
        if let Some(sc) = &doc.sync_config {
            println!(
                "  sync config: {} barrier, spin budget {}/{} (short/long)",
                sc.barrier, sc.spin_budget_short, sc.spin_budget_long
            );
        }
        for w in &doc.workloads {
            let ratios: Vec<String> = w
                .configs
                .iter()
                .filter(|c| c.config != "absent")
                .map(|c| format!("{} {:.2}x", c.config, c.overhead_ratio))
                .collect();
            println!("  {:<14} overhead: {}", w.name, ratios.join(" | "));
        }
    }
}

/// `bench compare`: gate a new run against a baseline document.
fn bench_compare() {
    use ora_bench::meter::{compare, BenchDoc};

    // Positional args after `bench compare`, skipping flag pairs.
    let argv: Vec<String> = std::env::args().collect();
    let positional: Vec<&String> = argv[3..]
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && (*i == 0 || !argv[3 + i - 1].starts_with("--")))
        .map(|(_, a)| a)
        .collect();
    let [old_path, new_path] = positional.as_slice() else {
        eprintln!("usage: omp_prof bench compare <old.json> <new.json> [--threshold 10]");
        std::process::exit(2);
    };
    let threshold: f64 = arg("--threshold", "10").parse().unwrap_or_else(|_| {
        eprintln!("--threshold must be a number");
        std::process::exit(2);
    });

    let load = |path: &str| -> BenchDoc {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        BenchDoc::from_json(&text).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    let report = compare::compare(&old, &new, threshold).unwrap_or_else(|e| {
        eprintln!("cannot compare {old_path} vs {new_path}: {e}");
        std::process::exit(2);
    });
    print!("{}", report.render(threshold));
    if !report.passed() {
        std::process::exit(1);
    }
}

/// `trace report --rank a.oratrace --rank b.oratrace` (or
/// `--ranks-dir DIR`): print the merged `(tick, gtid, seq, rank)`
/// timeline across per-rank trace files.
fn trace_report_ranks(files: &[String]) {
    let head: usize = arg("--head", "30").parse().unwrap_or(30);
    let micros = |ticks: u64| collector::clock::to_micros(ticks);
    let readers: Vec<TraceReader> = files
        .iter()
        .map(|f| {
            TraceReader::open(f).unwrap_or_else(|e| {
                eprintln!("cannot read {f}: {e}");
                std::process::exit(1);
            })
        })
        .collect();
    println!("merged fleet timeline over {} rank trace(s):", files.len());
    for (rank, (file, reader)) in files.iter().zip(&readers).enumerate() {
        println!(
            "  rank {rank}: {file} — {} records, {} dropped",
            reader.record_count(),
            reader.dropped()
        );
    }
    let merged = ora_trace::merge_ranks(&readers).unwrap_or_else(|e| {
        eprintln!("merge failed: {e}");
        std::process::exit(1);
    });
    println!("  merged: {} records\n", merged.len());

    let mut counts: std::collections::BTreeMap<&str, u64> = Default::default();
    for e in &merged {
        *counts.entry(e.record.event.name()).or_insert(0) += 1;
    }
    println!(
        "{}",
        report::table(
            &["event", "count"],
            counts
                .iter()
                .map(|(name, n)| vec![name.to_string(), n.to_string()]),
        )
    );
    println!("first {} records:", head.min(merged.len()));
    for e in merged.iter().take(head) {
        println!(
            "{:>12.3} us  rank {:<2} t{:<3} {:<34} region={} wait={}",
            micros(e.record.tick),
            e.rank,
            e.record.gtid,
            e.record.event.name(),
            e.record.region_id,
            e.record.wait_id
        );
    }
}

/// `trace report`: query a recorded binary trace offline.
fn trace_report() {
    // Multi-rank mode: `--rank FILE` repeated and/or `--ranks-dir DIR`.
    let argv: Vec<String> = std::env::args().collect();
    let mut rank_files: Vec<String> = argv
        .windows(2)
        .filter(|w| w[0] == "--rank")
        .map(|w| w[1].clone())
        .collect();
    let ranks_dir = arg("--ranks-dir", "");
    if !ranks_dir.is_empty() {
        let mut paths: Vec<_> = std::fs::read_dir(&ranks_dir)
            .unwrap_or_else(|e| {
                eprintln!("cannot read {ranks_dir}: {e}");
                std::process::exit(1);
            })
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("oratrace"))
            .collect();
        paths.sort();
        rank_files.extend(paths.iter().map(|p| p.display().to_string()));
    }
    if !rank_files.is_empty() {
        return trace_report_ranks(&rank_files);
    }

    let input = arg("--in", "run.oratrace");
    let head: usize = arg("--head", "30").parse().unwrap_or(30);
    let reader = TraceReader::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        std::process::exit(1);
    });

    let micros = |ticks: u64| collector::clock::to_micros(ticks);
    let has = |name: &str| std::env::args().any(|a| a == name);
    let records: Vec<TraceEvent> = if has("--thread") {
        let gtid: usize = arg("--thread", "0").parse().unwrap_or(0);
        reader.for_thread(gtid)
    } else if has("--region") {
        let region: u64 = arg("--region", "0").parse().unwrap_or(0);
        reader.for_region(region)
    } else if has("--from-us") || has("--to-us") {
        let lo = (arg("--from-us", "0").parse().unwrap_or(0.0) * 1e3) as u64;
        let hi = (arg("--to-us", &f64::MAX.to_string())
            .parse()
            .unwrap_or(f64::MAX)
            .min(u64::MAX as f64 * 1e-3)
            * 1e3) as u64;
        reader.time_range(lo, hi)
    } else {
        reader.records()
    }
    .unwrap_or_else(|e| {
        eprintln!("trace is damaged: {e}");
        std::process::exit(1);
    });

    let footer = reader.footer();
    println!("trace: {input}");
    println!(
        "  persisted {} records in {} chunks | dropped {} | lanes {}",
        reader.record_count(),
        footer.chunks.len(),
        reader.dropped(),
        footer.lanes.len(),
    );
    if reader.dropped() > 0 {
        let lossy = footer.lanes.iter().filter(|l| l.dropped() > 0).count();
        println!("  loss detail: {lossy} lane(s) dropped records (see footer counters)");
    }
    println!("  query matched {} records\n", records.len());

    let mut counts: std::collections::BTreeMap<&str, u64> = Default::default();
    for r in &records {
        *counts.entry(r.event.name()).or_insert(0) += 1;
    }
    println!(
        "{}",
        report::table(
            &["event", "count"],
            counts
                .iter()
                .map(|(name, n)| vec![name.to_string(), n.to_string()]),
        )
    );

    // Governor decision records (if the trace was captured under the
    // governed rung): the sampling-rate timeline, oldest first.
    let timeline = reader.governor_timeline().unwrap_or_default();
    if !timeline.is_empty() {
        println!(
            "governor sampling-rate timeline ({} decision(s)):",
            timeline.len()
        );
        for s in &timeline {
            println!(
                "{:>12.3} us  {:<34} period 2^{} -> 2^{} (overhead {:.2}% of budget window)",
                micros(s.tick),
                s.event.name(),
                s.old_shift,
                s.new_shift,
                s.overhead_ppm as f64 / 10_000.0
            );
        }
        println!();
    }

    println!("first {} records:", head.min(records.len()));
    for r in records.iter().take(head) {
        println!(
            "{:>12.3} us  t{:<3} {:<34} region={} wait={}",
            micros(r.tick),
            r.gtid,
            r.event.name(),
            r.region_id,
            r.wait_id
        );
    }
}

/// Silence the default panic hook for *injected* faults only, so fault
/// harness runs don't spew backtraces for panics that are the test.
fn quiet_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
        if msg.is_some_and(|m| m.contains("injected")) {
            return;
        }
        prev(info);
    }));
}

fn drop_policy(s: &str) -> DropPolicy {
    match s {
        "oldest" => DropPolicy::Oldest,
        "block" => DropPolicy::Block,
        _ => DropPolicy::Newest,
    }
}

/// Shared fault-harness setup: attach a streaming tracer (with a
/// drainer-killing sink when requested) and optionally register a
/// permanently-panicking callback over the tracer's barrier slot.
fn attach_fault_harness(
    rt: &OpenMp,
    policy: DropPolicy,
    inject_panic_cb: bool,
    kill_drainer: bool,
) -> (RuntimeHandle, StreamingTracer<Box<dyn TraceSink>>) {
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).expect("runtime symbol");
    let sink: Box<dyn TraceSink> = if kill_drainer {
        // Budget covers exactly the 8-byte header `Recorder::start`
        // writes on the caller thread; the drainer's first chunk flush
        // then panics, killing it mid-recording.
        Box::new(FaultSink::new(8, FaultMode::Panic))
    } else {
        Box::new(MemorySink::new())
    };
    let config = TraceConfig {
        policy,
        ..TraceConfig::default()
    };
    let tracer = StreamingTracer::attach(handle.clone(), config, sink).expect("attach tracer");
    if inject_panic_cb {
        // Replaces the tracer's callback in the single per-event slot —
        // every implicit-barrier begin now panics until quarantined.
        handle
            .register(
                Event::ThreadBeginImplicitBarrier,
                Arc::new(|_| panic!("injected callback panic")),
            )
            .expect("inject panicking callback");
    }
    (handle, tracer)
}

/// `health`: run a short diagnostic workload (with optional injected
/// collector faults) and report the runtime's fault-isolation counters.
fn health() {
    let has = |name: &str| std::env::args().any(|a| a == name);
    let workload = arg("--workload", "epcc");
    let threads: usize = arg("--threads", "2").parse().unwrap_or(2);
    let class = npb_class(&arg("--class", "s"));
    let inject = has("--inject-panic-cb");
    let kill = has("--kill-drainer");
    let policy = drop_policy(&arg("--policy", "newest"));
    if inject || kill {
        quiet_injected_panics();
    }

    let rt = OpenMp::with_threads(threads);
    if let Ok(n) = arg("--quarantine", "3").parse() {
        rt.set_quarantine_threshold(n);
    }
    let (handle, tracer) = attach_fault_harness(&rt, policy, inject, kill);
    run_workload(&rt, &workload, class);
    // Workers fire trailing end-of-barrier events asynchronously.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let drainer = tracer.health();
    let finish = tracer.finish();
    let api = handle.query_health().expect("OMP_REQ_HEALTH");

    println!("\n=== runtime health (OMP_REQ_HEALTH) ===");
    println!(
        "{}",
        report::table(
            &["counter", "value"],
            [
                ("callback panics caught", api.callback_panics),
                ("callbacks quarantined", api.callbacks_quarantined),
                ("out-of-sequence requests", api.sequence_errors),
                ("requests served", api.requests),
                ("events sampled (governor)", api.events_sampled),
                ("events skipped (governor)", api.events_skipped),
                ("tasks stolen (scheduler)", api.tasks_stolen),
                ("task deque overflows", api.task_overflows),
                ("taskwait parks", api.taskwait_parks),
            ]
            .iter()
            .map(|(k, v)| vec![k.to_string(), v.to_string()]),
        )
    );

    println!("=== trace drainer ===");
    println!(
        "  alive {} | degraded {} | heartbeats {} | drained {}",
        drainer.alive, drainer.degraded, drainer.heartbeats, drainer.drained
    );
    if let Some(err) = &drainer.error {
        println!("  failure: {err}");
    }
    match finish {
        Ok((_sink, stats)) => println!(
            "  finish: clean ({} records drained, {} dropped)",
            stats.drained(),
            stats.dropped()
        ),
        Err(StreamError::Trace(TraceError::DrainerFailed {
            reason,
            drained,
            dropped,
        })) => {
            println!("  finish: DEGRADED — {reason} ({drained} records drained, {dropped} dropped)")
        }
        Err(e) => {
            eprintln!("  finish failed unexpectedly: {e}");
            std::process::exit(1);
        }
    }

    let faulted = api.faulted() || drainer.degraded;
    println!(
        "\nverdict: {}",
        if faulted {
            "FAULTED — collector faults were caught and isolated; the application completed"
        } else {
            "HEALTHY"
        }
    );
    std::process::exit(if faulted { 3 } else { 0 });
}

/// `suite`: every built-in workload under a streaming tracer, verifying
/// that application results stay correct even with injected collector
/// faults. Exit 0 iff every workload completes with correct results.
fn suite_run() {
    let has = |name: &str| std::env::args().any(|a| a == name);
    let threads: usize = arg("--threads", "2").parse().unwrap_or(2);
    let class = npb_class(&arg("--class", "s"));
    let inject = has("--inject-panic-cb");
    let kill = has("--kill-drainer");
    let policy = drop_policy(&arg("--policy", "newest"));
    if inject || kill {
        quiet_injected_panics();
    }
    println!(
        "fault-isolation suite: {} thread(s), policy {:?}, inject-panic-cb {}, kill-drainer {}",
        threads, policy, inject, kill
    );

    let mut rows = Vec::new();
    let mut all_ok = true;
    let workloads: Vec<String> = std::iter::once("epcc".to_string())
        .chain(NpbKernel::all().into_iter().map(|k| k.name.to_string()))
        .collect();
    for name in &workloads {
        let rt = OpenMp::with_threads(threads);
        if let Ok(n) = arg("--quarantine", "3").parse() {
            rt.set_quarantine_threshold(n);
        }
        let (handle, tracer) = attach_fault_harness(&rt, policy, inject, kill);

        let result = if name == "epcc" {
            let cfg = EpccConfig {
                outer_reps: 2,
                inner_reps: 64,
                delay_len: 64,
            };
            let directives = epcc::run_all(&rt, &cfg).len();
            format!("ok ({directives} directives)")
        } else {
            let kernel = NpbKernel::all()
                .into_iter()
                .find(|k| k.name == name)
                .expect("known kernel");
            kernel.run(&rt, class);
            match kernel.verify(rt.num_threads(), class) {
                workloads::npb::Verification::Successful { .. } => "ok (verified)".to_string(),
                workloads::npb::Verification::NotApplicable => "ok".to_string(),
                workloads::npb::Verification::Failed { expected, got } => {
                    all_ok = false;
                    format!("FAILED (expected {expected}, got {got})")
                }
            }
        };
        std::thread::sleep(std::time::Duration::from_millis(50));

        let degraded = tracer.is_degraded();
        let (drained, dropped) = match tracer.finish() {
            Ok((_sink, stats)) => (stats.drained(), stats.dropped()),
            Err(StreamError::Trace(TraceError::DrainerFailed {
                drained, dropped, ..
            })) => (drained, dropped),
            Err(e) => {
                eprintln!("{name}: trace finish failed unexpectedly: {e}");
                all_ok = false;
                (0, 0)
            }
        };
        let api = handle.query_health().expect("OMP_REQ_HEALTH");
        rows.push(vec![
            name.clone(),
            result,
            drained.to_string(),
            dropped.to_string(),
            degraded.to_string(),
            api.callback_panics.to_string(),
            api.callbacks_quarantined.to_string(),
        ]);
    }

    println!(
        "\n{}",
        report::table(
            &[
                "workload",
                "result",
                "drained",
                "dropped",
                "degraded",
                "cb panics",
                "quarantined",
            ],
            rows.into_iter(),
        )
    );
    if all_ok {
        println!(
            "all {} workloads completed with correct results",
            workloads.len()
        );
    } else {
        eprintln!("FAILURE: at least one workload produced wrong results");
        std::process::exit(1);
    }
}

/// `omp_prof fuzz` — drive the oracle-differential fuzzer. Three input
/// modes, combinable: `--seeds N` (generate seeds `start..start+N`),
/// `--case FILE` (replay one case file), `--cases DIR` (replay every
/// `*.case` in a directory). `--rungs KEYS` restricts the sweep to a
/// comma-separated rung subset (default `all`) — e.g.
/// `--rungs governed` for a nightly governor soak. With `--out DIR`,
/// each failing scenario is written as `<name>.case` alongside a
/// greedily minimized `<name>.min.case` for triage.
fn fuzz_run() {
    use collector::modes::CollectionConfig;
    use ora_fuzz::{check_scenario_rungs, fails_with_retries_on, minimize, Scenario};

    let seeds: u64 = arg("--seeds", "0").parse().unwrap_or_else(|_| {
        eprintln!("--seeds must be an integer");
        std::process::exit(2);
    });
    let start: u64 = arg("--start", "0").parse().unwrap_or_else(|_| {
        eprintln!("--start must be an integer");
        std::process::exit(2);
    });
    let case = arg("--case", "");
    let cases_dir = arg("--cases", "");
    let out_dir = arg("--out", "");
    let rungs_arg = arg("--rungs", "all");
    let rungs: Vec<CollectionConfig> = if rungs_arg == "all" {
        CollectionConfig::ALL.to_vec()
    } else {
        rungs_arg
            .split(',')
            .map(|k| {
                CollectionConfig::from_key(k.trim()).unwrap_or_else(|| {
                    eprintln!(
                        "unknown rung '{}' — use absent|paused|state|trace|governed (or all)",
                        k.trim()
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };
    if seeds == 0 && case.is_empty() && cases_dir.is_empty() {
        eprintln!("nothing to do — pass --seeds N, --case FILE, or --cases DIR");
        std::process::exit(2);
    }

    // Assemble the work list: (name, scenario).
    let mut work: Vec<(String, Scenario)> = Vec::new();
    let mut load = |path: &std::path::Path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        let scenario = Scenario::parse(&text).unwrap_or_else(|e| {
            eprintln!("{}: {e}", path.display());
            std::process::exit(2);
        });
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("case")
            .to_string();
        work.push((name, scenario));
    };
    if !case.is_empty() {
        load(std::path::Path::new(&case));
    }
    if !cases_dir.is_empty() {
        let mut paths: Vec<_> = std::fs::read_dir(&cases_dir)
            .unwrap_or_else(|e| {
                eprintln!("cannot read {cases_dir}: {e}");
                std::process::exit(2);
            })
            .map(|e| e.expect("dir entry").path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("case"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            eprintln!("{cases_dir} contains no .case files");
            std::process::exit(2);
        }
        for p in &paths {
            load(p);
        }
    }
    for seed in start..start + seeds {
        work.push((format!("seed_{seed}"), ora_fuzz::generate(seed)));
    }

    let mut failures = 0usize;
    let total = work.len();
    for (i, (name, scenario)) in work.iter().enumerate() {
        let mismatches = check_scenario_rungs(scenario, &rungs);
        if mismatches.is_empty() {
            println!("[{:>4}/{total}] {name}: ok", i + 1);
            continue;
        }
        failures += 1;
        println!(
            "[{:>4}/{total}] {name}: FAILED ({} mismatch(es))",
            i + 1,
            mismatches.len()
        );
        for m in &mismatches {
            println!("    {m}");
        }
        if !out_dir.is_empty() {
            std::fs::create_dir_all(&out_dir).expect("create --out dir");
            let path = std::path::Path::new(&out_dir).join(format!("{name}.case"));
            std::fs::write(&path, scenario.to_case_file()).expect("write case");
            println!("    wrote {}", path.display());
            let min = minimize(scenario, |s| fails_with_retries_on(s, &rungs, 3));
            let min_path = std::path::Path::new(&out_dir).join(format!("{name}.min.case"));
            std::fs::write(&min_path, min.to_case_file()).expect("write minimized case");
            println!("    wrote {} (minimized)", min_path.display());
        }
    }

    if failures == 0 {
        let swept: Vec<&str> = rungs.iter().map(|r| r.key()).collect();
        println!(
            "fuzz: all {total} scenario(s) matched the oracle on rung(s): {}",
            swept.join(", ")
        );
    } else {
        eprintln!("fuzz: {failures}/{total} scenario(s) FAILED");
        std::process::exit(1);
    }
}

/// Render a fleet daemon's per-lane accounting and merged store.
fn render_fleet_report(rep: &ora_fleet::FleetReport) {
    println!("\n=== fleet lanes ===");
    println!(
        "{}",
        report::table(
            &[
                "rank",
                "records",
                "epochs",
                "ring drops",
                "reconciled",
                "status"
            ],
            rep.lanes.iter().map(|l| {
                let status = if let Some(why) = &l.quarantined {
                    format!("DEGRADED — {why}")
                } else if l.finished {
                    "ok (FIN)".to_string()
                } else {
                    "no FIN".to_string()
                };
                vec![
                    l.rank.to_string(),
                    l.records.to_string(),
                    l.epochs.to_string(),
                    l.footer.map_or("-".to_string(), |(_, d)| d.to_string()),
                    l.reconciled().to_string(),
                    status,
                ]
            }),
        )
    );
    for why in &rep.rejected {
        println!("  rejected connection: {why}");
    }
    println!(
        "merged store: {} records | {} settled late (below watermark)",
        rep.store.len(),
        rep.store.late_events()
    );
    let mut counts: std::collections::BTreeMap<&str, u64> = Default::default();
    for e in rep.store.records() {
        *counts.entry(e.record.event.name()).or_insert(0) += 1;
    }
    println!(
        "{}",
        report::table(
            &["event", "count"],
            counts
                .iter()
                .map(|(name, n)| vec![name.to_string(), n.to_string()]),
        )
    );
}

/// `serve`: run the trace-aggregation daemon standalone until the given
/// number of ranks have come and gone, then report.
fn fleet_serve() {
    let endpoint = ora_fleet::Endpoint::parse(&arg("--endpoint", "fleet.sock"));
    let ranks: u64 = arg("--ranks", "1").parse().unwrap_or(1);
    let slow = std::time::Duration::from_micros(arg("--slow-us", "0").parse().unwrap_or(0));
    println!("ora-fleet daemon on {endpoint}, serving {ranks} rank(s)");
    match ora_bench::fleet_driver::serve(&endpoint, ranks, slow) {
        Ok(report) => {
            render_fleet_report(&report);
            std::process::exit(if report.reconciled() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

/// `fleet`: spawn N child rank processes streaming an NPB-MZ workload
/// into an in-process daemon; report the merged fleet profile and
/// verify the online merge against the offline one.
fn fleet_run() {
    use ora_bench::fleet_driver::{run_fleet, FleetConfig};
    let ranks: usize = arg("--ranks", "2").parse().unwrap_or(2);
    let default_dir = std::env::temp_dir()
        .join(format!("ora_fleet_{}", std::process::id()))
        .display()
        .to_string();
    let endpoint = arg("--endpoint", "");
    let cfg = FleetConfig {
        ranks,
        threads: arg("--threads", "2").parse().unwrap_or(2),
        workload: arg("--workload", "lu-mz"),
        class: npb_class(&arg("--class", "s")),
        endpoint: (!endpoint.is_empty()).then_some(endpoint),
        out_dir: arg("--out-dir", &default_dir).into(),
        kill_rank: arg("--kill-rank", "").parse().ok(),
        slow: std::time::Duration::from_micros(arg("--slow-us", "0").parse().unwrap_or(0)),
        window: arg("--window", "8").parse().unwrap_or(8),
    };
    println!(
        "fleet: {} × {} ({} rank processes × {} threads), class {:?}, traces in {}",
        cfg.workload,
        cfg.ranks,
        cfg.ranks,
        cfg.threads,
        cfg.class,
        cfg.out_dir.display()
    );
    if let Some(k) = cfg.kill_rank {
        println!("  crash injection: rank {k} dies mid-stream");
    }
    if !cfg.slow.is_zero() {
        println!("  slow-consumer injection: {:?} per chunk ACK", cfg.slow);
    }
    match run_fleet(&cfg) {
        Ok((report, identical)) => {
            render_fleet_report(&report);
            println!(
                "export byte-identical to offline merge_ranks: {}",
                if identical { "yes" } else { "NO" }
            );
            // Every surviving lane must FIN cleanly with reconciled
            // accounting; a killed lane must be degraded, not finished.
            let survivors_ok = report
                .lanes
                .iter()
                .filter(|l| cfg.kill_rank != Some(l.rank as usize))
                .all(|l| l.finished && l.quarantined.is_none() && l.reconciled());
            let killed_ok = cfg
                .kill_rank
                .is_none_or(|k| report.lane(k as u64).is_none_or(|l| !l.finished));
            if survivors_ok && killed_ok && identical {
                println!("fleet: ok");
            } else {
                eprintln!(
                    "fleet: FAILED (survivors ok: {survivors_ok}, killed lane degraded: {killed_ok}, export identical: {identical})"
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("fleet: {e}");
            std::process::exit(1);
        }
    }
}

/// Hidden per-child entry point `fleet` spawns: stream one rank.
fn fleet_rank_child() {
    let rank: usize = arg("--rank", "0").parse().unwrap_or(0);
    let endpoint = ora_fleet::Endpoint::parse(&arg("--endpoint", "fleet.sock"));
    let trace_out = arg("--trace-out", "rank.oratrace");
    let die_early = std::env::args().any(|a| a == "--die-early");
    if let Err(e) = ora_bench::fleet_driver::run_rank_child(
        &endpoint,
        rank,
        arg("--ranks", "1").parse().unwrap_or(1),
        arg("--threads", "2").parse().unwrap_or(2),
        &arg("--workload", "lu-mz"),
        npb_class(&arg("--class", "s")),
        std::path::Path::new(&trace_out),
        arg("--window", "8").parse().unwrap_or(8),
        die_early,
    ) {
        eprintln!("fleet-rank {rank}: {e}");
        std::process::exit(1);
    }
}

fn npb_class(s: &str) -> NpbClass {
    match s {
        "w" | "W" => NpbClass::W,
        "b" | "B" => NpbClass::Bsim,
        _ => NpbClass::S,
    }
}

fn main() {
    // Subcommand style: `omp_prof trace record ...` / `omp_prof bench run ...`
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("trace") {
        match argv.get(2).map(String::as_str) {
            Some("record") => return trace_record(),
            Some("report") => return trace_report(),
            Some("analyze") => return trace_analyze(),
            other => {
                eprintln!(
                    "unknown trace subcommand {other:?} — use `trace record`, `trace report`, or `trace analyze`"
                );
                std::process::exit(2);
            }
        }
    }
    if argv.get(1).map(String::as_str) == Some("health") {
        return health();
    }
    if argv.get(1).map(String::as_str) == Some("suite") {
        return suite_run();
    }
    if argv.get(1).map(String::as_str) == Some("fuzz") {
        return fuzz_run();
    }
    if argv.get(1).map(String::as_str) == Some("serve") {
        return fleet_serve();
    }
    if argv.get(1).map(String::as_str) == Some("fleet") {
        return fleet_run();
    }
    if argv.get(1).map(String::as_str) == Some("fleet-rank") {
        return fleet_rank_child();
    }
    if argv.get(1).map(String::as_str) == Some("bench") {
        match argv.get(2).map(String::as_str) {
            Some("run") => return bench_run(),
            Some("compare") => return bench_compare(),
            other => {
                eprintln!(
                    "unknown bench subcommand {other:?} — use `bench run` or `bench compare`"
                );
                std::process::exit(2);
            }
        }
    }

    let workload = arg("--workload", "cg");
    let tool = arg("--tool", "profile");
    let threads: usize = arg("--threads", "2").parse().unwrap_or(2);
    let class = npb_class(&arg("--class", "s"));

    let rt = OpenMp::with_threads(threads);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).expect("runtime symbol");

    match tool.as_str() {
        "profile" => {
            let p = Profiler::attach_default(handle).unwrap();
            run_workload(&rt, &workload, class);
            let profile = p.finish();
            println!("\n{}", profile.render());
        }
        "trace" => {
            let t = Tracer::attach(handle, 1_000_000).unwrap();
            run_workload(&rt, &workload, class);
            std::thread::sleep(std::time::Duration::from_millis(100));
            let trace = t.finish();
            println!("\nfirst 30 records:\n{}", trace.render_head(30));
            println!(
                "{}",
                report::table(
                    &["event", "count"],
                    ora_core::event::ALL_EVENTS
                        .iter()
                        .filter(|e| trace.count(**e) > 0)
                        .map(|e| vec![e.name().to_string(), trace.count(*e).to_string()]),
                )
            );
            if std::env::args().any(|a| a == "--csv") {
                println!("{}", trace.to_csv());
            }
        }
        "states" => {
            let t = StateTimer::attach(handle).unwrap();
            run_workload(&rt, &workload, class);
            std::thread::sleep(std::time::Duration::from_millis(100));
            let profile = t.finish();
            println!("\n{}", profile.render());
        }
        "suite" => {
            let t =
                collector::ToolSuite::attach(handle, collector::SuiteConfig::default()).unwrap();
            run_workload(&rt, &workload, class);
            std::thread::sleep(std::time::Duration::from_millis(100));
            println!("\n{}", t.finish().render());
        }
        "selective" => {
            let p = SelectiveProfiler::attach(handle, SelectivePolicy::default()).unwrap();
            run_workload(&rt, &workload, class);
            let r = p.finish();
            println!(
                "\njoins {} | sampled {} | skipped small {} | deduped {} | savings {:.1}%",
                r.joins,
                r.sampled,
                r.skipped_small,
                r.skipped_dedup,
                r.savings() * 100.0
            );
            println!("\ncall tree:\n{}", r.call_tree.render());
        }
        other => {
            eprintln!("unknown tool '{other}' — use profile|trace|states|selective|suite");
            std::process::exit(2);
        }
    }
}
