//! Table II: parallel-region calls per process for the NPB3.2-MZ-MPI
//! hybrids across P×T decompositions, computed from the zone-step
//! distribution and verified by a measured run.

use collector::report;
use ora_bench::Scale;
use workloads::{CollectMode, MzBenchmark};

const PAPER: [(&str, [u64; 4]); 3] = [
    ("BT-MZ", [167_616, 83_808, 41_904, 20_952]),
    ("LU-MZ", [40_353, 20_177, 10_089, 5_045]),
    ("SP-MZ", [436_672, 218_336, 109_168, 54_584]),
];

fn main() {
    let scale = Scale::from_args();
    let class = scale.npb_class();
    println!("Table II — parallel-region calls per process (process x thread)\n");

    let mut rows = Vec::new();
    for (bench, (name, paper)) in MzBenchmark::all().iter().zip(PAPER) {
        for (i, procs) in [1usize, 2, 4, 8].into_iter().enumerate() {
            let ours = bench.table2_calls(procs);
            assert_eq!(ours, paper[i], "{name} at {procs} procs");
        }
        rows.push(vec![
            name.to_string(),
            bench.table2_calls(1).to_string(),
            bench.table2_calls(2).to_string(),
            bench.table2_calls(4).to_string(),
            bench.table2_calls(8).to_string(),
        ]);
    }
    println!(
        "{}",
        report::table(&["benchmark", "1 X 8", "2 X 4", "4 X 2", "8 X 1"], rows)
    );
    println!("all twelve entries equal the paper's Table II exactly\n");

    // Verification run: every zone-step region call is observed as a join
    // sample by the per-rank profilers.
    println!("verification run at class {class:?} (2 ranks x 2 threads):");
    for bench in MzBenchmark::all() {
        let result = bench.run(2, 2, class, CollectMode::Profile);
        let expected: u64 = result.per_rank_calls.iter().sum();
        println!(
            "  {:6}  expected calls {:>8}  measured join samples {:>8}  wall {:.3}s",
            bench.name, expected, result.join_samples, result.wall_secs
        );
        assert_eq!(result.join_samples, expected);
    }
}
