//! Figure 5: overhead of ORA-based data collection on the NPB3.2-OMP
//! benchmarks for 1, 2, 4, and 8 threads.
//!
//! Each cell runs the synthetic kernel with and without the prototype
//! collector attached and reports the percentage wall-time increase
//! (sub-1% listed as zero, as in the paper). The expected shape: overhead
//! grows with the benchmark's parallel-region call count, making LU-HP
//! (298 959 calls) the worst case, as in the paper's 6%-on-8-threads
//! result.

use collector::{report, Mode};
use ora_bench::{fmt_pct, oversubscription_note, Scale};
use workloads::{driver, NpbKernel};

fn main() {
    let scale = Scale::from_args();
    let class = scale.npb_class();
    let thread_counts: Vec<usize> = match scale {
        Scale::Smoke => vec![1, 2],
        _ => vec![1, 2, 4, 8],
    };

    println!("Figure 5 — NPB3.2-OMP: % overhead of ORA data collection");
    println!("class: {class:?}");
    if let Some(note) = oversubscription_note(*thread_counts.iter().max().unwrap()) {
        println!("{note}");
    }
    println!();

    let kernels = NpbKernel::all();
    let mut rows = Vec::new();
    for kernel in &kernels {
        let mut row = vec![kernel.name.to_string()];
        for &nt in &thread_counts {
            let rt = omprt::OpenMp::with_threads(nt);
            let result = driver::measure_overhead(&rt, scale.reps(), Mode::Full, |rt| {
                std::hint::black_box(kernel.run(rt, class));
            })
            .unwrap();
            row.push(fmt_pct(result.overhead_pct().max(0.0)));
        }
        println!(
            "  measured {:<6} ({} region calls at {class:?})",
            kernel.name,
            kernel.region_calls(class)
        );
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["benchmark".to_string()];
    headers.extend(thread_counts.iter().map(|t| format!("{t} thr (%)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\n{}", report::table(&header_refs, rows));
    println!(
        "paper shape: LU-HP highest (≈6% on 8 threads, ~300k region calls); \
         most others below 5%; EP ≈ 0 (3 region calls)"
    );
}
