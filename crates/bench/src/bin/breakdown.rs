//! §V-B breakdown: where does the collection overhead come from?
//!
//! The paper re-ran the two worst benchmarks with collection disabled,
//! with callbacks only, and with full measurement: "For LU-HP, the results
//! indicate that 81.22% of the overheads can be attributed to performance
//! measurement/storage. In the case of SP-MZ, 99.35% of the overheads came
//! from performance measurement/storage." This harness reproduces that
//! three-way comparison for LU-HP on 4 threads and SP-MZ at 1 process × 4
//! threads.

use collector::report;
use ora_bench::Scale;
use workloads::{driver, CollectMode, MzBenchmark, NpbKernel};

fn main() {
    let scale = Scale::from_args();
    let class = scale.npb_class();
    println!("§V-B — overhead attribution: measurement/storage vs callbacks/communication");
    println!("class: {class:?}\n");

    let mut rows = Vec::new();

    // LU-HP on 4 threads.
    {
        let kernel = NpbKernel::lu_hp();
        let rt = omprt::OpenMp::with_threads(4);
        let b = driver::measure_breakdown(&rt, scale.reps(), |rt| {
            std::hint::black_box(kernel.run(rt, class));
        })
        .unwrap();
        rows.push(vec![
            "LU-HP (4 threads)".to_string(),
            format!("{:.3}", b.base_secs),
            format!("{:.3}", b.callbacks_secs),
            format!("{:.3}", b.full_secs),
            format!("{:.2}%", b.measurement_fraction() * 100.0),
            format!("{:.2}%", b.communication_fraction() * 100.0),
        ]);
        println!("  measured LU-HP");
    }

    // SP-MZ, 1 process x 4 threads.
    {
        let bench = MzBenchmark::sp_mz();
        let reps = scale.reps();
        let best = |mode: CollectMode| {
            (0..reps)
                .map(|_| bench.run(1, 4, class, mode).wall_secs)
                .fold(f64::INFINITY, f64::min)
        };
        let base = best(CollectMode::Off);
        let callbacks = best(CollectMode::CallbacksOnly);
        let full = best(CollectMode::Profile);
        let b = driver::OverheadBreakdown {
            base_secs: base,
            callbacks_secs: callbacks,
            full_secs: full,
        };
        rows.push(vec![
            "SP-MZ (1 x 4)".to_string(),
            format!("{:.3}", b.base_secs),
            format!("{:.3}", b.callbacks_secs),
            format!("{:.3}", b.full_secs),
            format!("{:.2}%", b.measurement_fraction() * 100.0),
            format!("{:.2}%", b.communication_fraction() * 100.0),
        ]);
        println!("  measured SP-MZ");
    }

    println!(
        "\n{}",
        report::table(
            &[
                "benchmark",
                "base (s)",
                "callbacks only (s)",
                "full (s)",
                "measurement/storage",
                "callbacks/comm",
            ],
            rows
        )
    );
    println!(
        "paper: LU-HP 81.22% measurement/storage; SP-MZ 99.35% — \
         \"efforts for reducing overheads should focus on optimizing the \
         measurement/storage phases\""
    );
}
