//! EPCC syncbench native output: the absolute per-directive overheads (in
//! microseconds per directive instance) that the EPCC suite itself
//! reports, plus the schedbench scheduling sweep — the raw data underneath
//! the paper's Fig. 4 percentages.

use collector::report;
use omprt::{OpenMp, Schedule};
use ora_bench::Scale;
use workloads::epcc::{self, EpccConfig, ALL_DIRECTIVES};
use workloads::schedbench::{self, SchedConfig};

fn main() {
    let scale = Scale::from_args();
    let cfg = match scale {
        Scale::Paper => EpccConfig::paper_scale(),
        Scale::Quick => EpccConfig {
            outer_reps: 6,
            inner_reps: 200,
            delay_len: 256,
        },
        Scale::Smoke => EpccConfig {
            outer_reps: 2,
            inner_reps: 16,
            delay_len: 64,
        },
    };
    let thread_counts: Vec<usize> = match scale {
        Scale::Smoke => vec![2],
        _ => vec![1, 2, 4, 8],
    };

    println!("EPCC syncbench — directive overhead (us per instance)");
    println!(
        "outer={} inner={} delay={}\n",
        cfg.outer_reps, cfg.inner_reps, cfg.delay_len
    );

    let mut rows = Vec::new();
    for directive in ALL_DIRECTIVES {
        let mut row = vec![directive.name().to_string()];
        for &nt in &thread_counts {
            let rt = OpenMp::with_threads(nt);
            rt.parallel(|_| {});
            let stat = epcc::measure(&rt, directive, &cfg);
            row.push(format!("{:.2}", stat.mean * 1e6));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["directive".to_string()];
    headers.extend(thread_counts.iter().map(|t| format!("{t} thr (us)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", report::table(&header_refs, rows));

    // Schedbench: per-iteration scheduling overhead by chunk size.
    println!("\nEPCC schedbench — scheduling overhead (us per iteration), 2 threads");
    let rt = OpenMp::with_threads(2);
    rt.parallel(|_| {});
    let sched_cfg = match scale {
        Scale::Smoke => SchedConfig {
            loop_iters: 128,
            reps: 2,
            delay_len: 16,
        },
        _ => SchedConfig::default(),
    };
    let max_chunk = if scale == Scale::Smoke { 4 } else { 64 };
    let points = schedbench::sweep(&rt, max_chunk, &sched_cfg);
    println!(
        "{}",
        report::table(
            &["schedule", "overhead/iter (us)", "raw/iter (us)"],
            points.iter().map(|p| {
                let name = match p.schedule {
                    Schedule::StaticEven => "static".to_string(),
                    Schedule::StaticChunk(c) => format!("static,{c}"),
                    Schedule::Dynamic(c) => format!("dynamic,{c}"),
                    Schedule::Guided(c) => format!("guided,{c}"),
                };
                vec![
                    name,
                    format!("{:.4}", p.overhead_per_iter * 1e6),
                    format!("{:.4}", p.raw_per_iter * 1e6),
                ]
            }),
        )
    );
    println!(
        "expected shape: dynamic,1 most expensive (a claim per iteration); \
         overhead falls as chunk size grows; guided between dynamic and static"
    );

    // Arraybench: data-clause overheads by array size.
    println!("\nEPCC arraybench — data-clause overhead (us per region), 2 threads");
    let array_cfg = workloads::arraybench::ArrayConfig {
        inner_reps: if scale == Scale::Smoke { 8 } else { 32 },
    };
    let max_size = if scale == Scale::Smoke { 81 } else { 59_049 };
    let points = workloads::arraybench::sweep(&rt, max_size, &array_cfg);
    println!(
        "{}",
        report::table(
            &["clause", "size", "overhead/region (us)"],
            points.iter().map(|p| {
                vec![
                    p.clause.name().to_string(),
                    p.size.to_string(),
                    format!("{:.3}", p.overhead_per_region * 1e6),
                ]
            }),
        )
    );
    println!(
        "expected shape: PRIVATE flat (no copy); FIRSTPRIVATE and COPYPRIVATE \
         grow with array size (copy-in / broadcast cost)"
    );
}
