//! Figure 4: percentage increase in EPCC syncbench directive overheads
//! when ORA collection is enabled, for 4/8/16/32 threads.
//!
//! For each directive and thread count we measure the raw per-instance
//! directive time with and without the prototype collector attached; the
//! reported value is the percentage increase, with sub-1% values listed as
//! zero, as in the paper's figure.

use collector::{report, Mode, Profiler, ProfilerConfig, RuntimeHandle};
use omprt::OpenMp;
use ora_bench::{fmt_pct, oversubscription_note, Scale};
use workloads::epcc::{self, EpccConfig, ALL_DIRECTIVES};

fn main() {
    let scale = Scale::from_args();
    let cfg = match scale {
        Scale::Paper => EpccConfig::paper_scale(),
        Scale::Quick => EpccConfig {
            outer_reps: 6,
            inner_reps: 200,
            delay_len: 256,
        },
        Scale::Smoke => EpccConfig {
            outer_reps: 2,
            inner_reps: 16,
            delay_len: 64,
        },
    };
    let thread_counts: Vec<usize> = match scale {
        Scale::Smoke => vec![2, 4],
        _ => vec![4, 8, 16, 32],
    };

    println!("Figure 4 — EPCC syncbench: % increase in directive overhead with ORA collection");
    println!(
        "config: outer={} inner={} delay={} ({} directive instances/measurement)",
        cfg.outer_reps,
        cfg.inner_reps,
        cfg.delay_len,
        cfg.outer_reps * cfg.inner_reps
    );
    if let Some(note) = oversubscription_note(*thread_counts.iter().max().unwrap()) {
        println!("{note}");
    }
    println!();

    let mut rows = Vec::new();
    for directive in ALL_DIRECTIVES {
        let mut row = vec![directive.name().to_string()];
        for &nt in &thread_counts {
            let rt = OpenMp::with_threads(nt);
            rt.parallel(|_| {}); // warm the pool
            let base = epcc::measure(&rt, directive, &cfg);

            let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
            let profiler = Profiler::attach(
                handle,
                ProfilerConfig {
                    mode: Mode::Full,
                    ..ProfilerConfig::default()
                },
            )
            .unwrap();
            let collected = epcc::measure(&rt, directive, &cfg);
            let _ = profiler.finish();

            let pct = if base.raw_mean > 0.0 {
                (collected.raw_mean - base.raw_mean) / base.raw_mean * 100.0
            } else {
                0.0
            };
            row.push(fmt_pct(pct.max(0.0)));
        }
        println!(
            "  measured {:<12} ({} thread counts)",
            directive.name(),
            thread_counts.len()
        );
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["directive".to_string()];
    headers.extend(thread_counts.iter().map(|t| format!("{t} thr (%)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\n{}", report::table(&header_refs, rows));
    println!(
        "paper shape: heavily-used directives (parallel, parallel-for, reduction) \
         sit around ~5%; rarely-used directives under 5%; lock/atomic are \
         noisy outliers because their base times are tiny"
    );
}
