//! Table I: number of parallel regions and region calls per NPB3.2-OMP
//! benchmark, with the call counts *measured* through ORA fork events (the
//! same mechanism a collector would use), next to the paper's values.

use collector::{report, RuntimeHandle, Tracer};
use omprt::OpenMp;
use ora_bench::Scale;
use workloads::{NpbClass, NpbKernel};

const PAPER: [(&str, u64, u64); 8] = [
    ("BT", 11, 1_014),
    ("EP", 3, 3),
    ("SP", 14, 3_618),
    ("MG", 10, 1_281),
    ("FT", 9, 112),
    ("CG", 15, 2_212),
    ("LU-HP", 16, 298_959),
    ("LU", 9, 518),
];

fn main() {
    let scale = Scale::from_args();
    let class = scale.npb_class();
    println!("Table I — parallel regions per NPB3.2-OMP benchmark");
    println!("measured class: {class:?} (call counts scale; structure is invariant)\n");

    let mut rows = Vec::new();
    for (kernel, (name, paper_regions, paper_calls)) in NpbKernel::all().iter().zip(PAPER) {
        let rt = OpenMp::with_threads(2);
        let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
        let tracer = Tracer::attach(handle, 1024).unwrap();
        kernel.run(&rt, class);
        let measured_calls = tracer.region_calls();
        let _ = tracer.finish();

        rows.push(vec![
            name.to_string(),
            paper_regions.to_string(),
            kernel.region_count().to_string(),
            paper_calls.to_string(),
            kernel.region_calls(NpbClass::Bsim).to_string(),
            measured_calls.to_string(),
        ]);
        assert_eq!(
            measured_calls,
            kernel.region_calls(class),
            "{name}: fork events must equal the kernel's region calls"
        );
    }

    println!(
        "{}",
        report::table(
            &[
                "benchmark",
                "# regions (paper)",
                "# regions (ours)",
                "# calls (paper, B)",
                "# calls (ours, B-sim)",
                "# calls (measured via ORA forks)",
            ],
            rows
        )
    );
    println!("every measured count equals the kernel's structural count at the chosen class");
}
