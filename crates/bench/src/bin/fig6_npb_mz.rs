//! Figure 6: overhead of ORA-based data collection on the NPB3.2-MZ-MPI
//! hybrids across the 1×8, 2×4, 4×2, 8×1 process × thread decompositions.
//!
//! Each rank of the simulated MPI job owns its own OpenMP runtime with its
//! own attached collector. Expected shape: SP-MZ worst at 1×8 (436 672
//! region calls in one process — the paper's 16% case), halving with the
//! process count.

use collector::report;
use ora_bench::{fmt_pct, oversubscription_note, Scale};
use workloads::{CollectMode, MzBenchmark};

fn main() {
    let scale = Scale::from_args();
    let class = scale.npb_class();
    let decomps: Vec<(usize, usize)> = match scale {
        Scale::Smoke => vec![(1, 2), (2, 1)],
        _ => vec![(1, 8), (2, 4), (4, 2), (8, 1)],
    };

    println!("Figure 6 — NPB3.2-MZ-MPI: % overhead of ORA data collection");
    println!("class: {class:?}");
    let max_cpu = decomps.iter().map(|(p, t)| p * t).max().unwrap();
    if let Some(note) = oversubscription_note(max_cpu) {
        println!("{note}");
    }
    println!();

    let mut rows = Vec::new();
    for bench in MzBenchmark::all() {
        let mut row = vec![bench.name.to_string()];
        for &(procs, threads) in &decomps {
            let mut base = f64::INFINITY;
            let mut collected = f64::INFINITY;
            for _ in 0..scale.reps() {
                base = base.min(bench.run(procs, threads, class, CollectMode::Off).wall_secs);
                collected = collected.min(
                    bench
                        .run(procs, threads, class, CollectMode::Profile)
                        .wall_secs,
                );
            }
            let pct = ((collected - base) / base * 100.0).max(0.0);
            row.push(fmt_pct(pct));
        }
        println!(
            "  measured {:<6} (max {} region calls/process at {class:?})",
            bench.name,
            bench
                .per_rank_calls(decomps[0].0, class)
                .iter()
                .max()
                .unwrap()
        );
        rows.push(row);
    }

    let mut headers: Vec<String> = vec!["benchmark".to_string()];
    headers.extend(decomps.iter().map(|(p, t)| format!("{p} x {t} (%)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\n{}", report::table(&header_refs, rows));
    println!(
        "paper shape: SP-MZ highest at 1 x 8 (~16%, >400k region calls), \
         ~8% at 2 x 4; BT-MZ/LU-MZ lower; overhead tracks per-process call count"
    );
}
