//! The measurement loop: workloads × collector configurations → document.
//!
//! For each workload of a suite the runner walks the
//! collector-intrusiveness ladder ([`CollectionConfig::ALL`])
//! **interleaved**: every repetition attaches each rung in turn, times
//! one repetition under it with the same monotonic clock the collectors
//! sample, and detaches. Interleaving matters on a shared machine —
//! low-frequency load drift (another process waking up mid-run) then
//! lands on every configuration roughly equally and cancels out of
//! the overhead *ratios*, instead of biasing whichever configuration
//! happened to run in the slow window. The first `warmup` rounds are
//! discarded; the rest feed the [`stats`](super::stats) pipeline.
//! Overhead ratios are computed against the `absent` rung *of the same
//! run*, with conservative interval bounds (config CI low over absent CI
//! high, and vice versa), so a ratio's interval never understates the
//! uncertainty of its two inputs.

use collector::modes::CollectionConfig;
use collector::{clock, RuntimeHandle};
use omprt::OpenMp;
use workloads::meterwork::{meter_workloads, MeterScale, MeterSuite, MeterWorkload};

use super::schema::{BenchDoc, ConfigResult, SyncConfig, WorkloadResult};
use super::stats::{analyze, SampleStats, StatPolicy};

/// Unit string stamped into every document this runner produces.
pub const UNIT: &str = "seconds/rep";

/// Everything that parameterizes one meter run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Work sizing.
    pub scale: MeterScale,
    /// OpenMP thread count.
    pub threads: usize,
    /// Discarded repetitions per configuration.
    pub warmup: usize,
    /// Timed repetitions per configuration.
    pub reps: usize,
    /// Statistics policy (rejection, bootstrap, seed).
    pub policy: StatPolicy,
}

impl RunnerConfig {
    /// CI-sized run: seconds in total, enough repetitions for a CI that
    /// means something.
    pub fn quick() -> RunnerConfig {
        RunnerConfig {
            scale: MeterScale::Quick,
            threads: 2,
            warmup: 2,
            reps: 11,
            policy: StatPolicy::default(),
        }
    }

    /// Baseline-refresh run: more repetitions, bigger work sizes.
    pub fn full() -> RunnerConfig {
        RunnerConfig {
            scale: MeterScale::Full,
            threads: 2,
            warmup: 2,
            reps: 15,
            policy: StatPolicy::default(),
        }
    }
}

/// Why a run failed (attachment errors surface; timing cannot fail).
pub type RunError = collector::tracer::StreamError;

/// Run `suite` and produce its bench document.
pub fn run_suite(suite: MeterSuite, cfg: &RunnerConfig) -> Result<BenchDoc, RunError> {
    run_suite_with_progress(suite, cfg, |_| {})
}

/// [`run_suite`] with a progress callback (one line per finished cell).
pub fn run_suite_with_progress(
    suite: MeterSuite,
    cfg: &RunnerConfig,
    mut progress: impl FnMut(&str),
) -> Result<BenchDoc, RunError> {
    let mut results = Vec::new();
    for workload in meter_workloads(suite, cfg.scale) {
        results.push(run_workload(&workload, cfg, &mut progress)?);
    }
    Ok(BenchDoc {
        suite: suite.key().to_string(),
        scale: cfg.scale.key().to_string(),
        threads: cfg.threads,
        warmup: cfg.warmup,
        target_reps: cfg.reps,
        unit: UNIT.to_string(),
        sync_config: Some(sync_config()),
        workloads: results,
    })
}

/// The synchronization configuration the measured runtime actually used:
/// the default barrier algorithm plus the host-adaptive spin budgets.
/// Stamped into every document so a baseline produced under one barrier
/// or spin policy is distinguishable from a run under another.
fn sync_config() -> SyncConfig {
    SyncConfig {
        barrier: omprt::Config::default().barrier.name().to_string(),
        spin_budget_short: u64::from(omprt::spin::short_budget()),
        spin_budget_long: u64::from(omprt::spin::long_budget()),
    }
}

fn run_workload(
    workload: &MeterWorkload,
    cfg: &RunnerConfig,
    progress: &mut impl FnMut(&str),
) -> Result<WorkloadResult, RunError> {
    // Workloads that pin a runtime configuration (team size, barrier
    // algorithm, nesting mode — the sync and topo suites) get exactly
    // that; everything else runs on the runner's default-threads runtime.
    let rt = match workload.runtime_config() {
        Some(c) => OpenMp::with_config(c.clone()),
        None => OpenMp::with_threads(cfg.threads),
    };
    rt.parallel(|_| {}); // warm the worker pool once, outside any config
    let handle = RuntimeHandle::discover_named(rt.symbol_name())
        .ok_or(RunError::Ora(ora_core::OraError::Error))?;

    let rounds = cfg.warmup + cfg.reps.max(1);
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); CollectionConfig::ALL.len()];
    for round in 0..rounds {
        for (slot, config) in CollectionConfig::ALL.into_iter().enumerate() {
            let active = config.attach(&handle)?;
            let (_, ticks) = clock::time(|| std::hint::black_box(workload.run_rep(&rt)));
            // Workers fire trailing end-of-barrier events asynchronously;
            // give them a beat before tearing the attachment down.
            if config != CollectionConfig::Absent {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            active.finish()?;
            if round >= cfg.warmup {
                samples[slot].push(clock::to_secs(ticks));
            }
        }
    }

    let mut per_config: Vec<(CollectionConfig, SampleStats)> = Vec::new();
    for (slot, config) in CollectionConfig::ALL.into_iter().enumerate() {
        let stats = analyze(&samples[slot], &cfg.policy);
        progress(&format!(
            "  {:<14} {:<7} median {:>9.3} ms over {} rep(s) ({} rejected)",
            workload.name(),
            config.key(),
            stats.median * 1e3,
            stats.reps,
            stats.rejected
        ));
        per_config.push((config, stats));
    }

    let absent = per_config
        .iter()
        .find(|(c, _)| *c == CollectionConfig::Absent)
        .map(|(_, s)| *s)
        .expect("ladder always contains the absent rung");

    let configs = per_config
        .into_iter()
        .map(|(config, stats)| {
            let (ratio, lo, hi) = if config == CollectionConfig::Absent {
                (1.0, 1.0, 1.0)
            } else if absent.median > 0.0 && absent.ci_lo > 0.0 {
                (
                    stats.median / absent.median,
                    stats.ci_lo / absent.ci_hi,
                    stats.ci_hi / absent.ci_lo,
                )
            } else {
                (1.0, 1.0, 1.0)
            };
            ConfigResult {
                config: config.key().to_string(),
                stats,
                overhead_ratio: ratio,
                ratio_ci_lo: lo,
                ratio_ci_hi: hi,
            }
        })
        .collect();

    Ok(WorkloadResult {
        name: workload.name().to_string(),
        work_units: workload.work_units(),
        configs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny-but-real end-to-end run: every cell present, ratios sane,
    /// document round-trips.
    #[test]
    fn npb_suite_runs_end_to_end_and_round_trips() {
        let cfg = RunnerConfig {
            reps: 3,
            warmup: 0,
            ..RunnerConfig::quick()
        };
        let doc = run_suite(MeterSuite::Npb, &cfg).unwrap();
        assert_eq!(doc.suite, "npb");
        assert_eq!(doc.workloads.len(), 2);
        for w in &doc.workloads {
            assert_eq!(w.configs.len(), CollectionConfig::ALL.len());
            let absent = w.config("absent").unwrap();
            assert_eq!(absent.overhead_ratio, 1.0);
            assert!(absent.stats.median > 0.0, "{}: zero median", w.name);
            for c in &w.configs {
                assert!(c.stats.reps >= 1);
                assert!(c.stats.ci_lo <= c.stats.median && c.stats.median <= c.stats.ci_hi);
                assert!(c.overhead_ratio > 0.0);
                assert!(c.ratio_ci_lo <= c.ratio_ci_hi);
            }
        }
        let sc = doc.sync_config.as_ref().expect("runner stamps the config");
        assert!(["central", "tree"].contains(&sc.barrier.as_str()));
        let parsed = BenchDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(parsed, doc);
    }
}
