//! The versioned, self-describing `BENCH_*.json` document format.
//!
//! A bench document is the machine-readable artifact of one meter run:
//! one file per suite (`BENCH_epcc.json`, `BENCH_npb.json`), each
//! carrying enough metadata to be interpreted years later with no access
//! to this code — a `schema` name, a `schema_version`, the unit of every
//! number, and the run parameters that make two documents comparable
//! (scale, thread count, warmup and repetition policy).
//!
//! Serialization is a hand-rolled writer and parsing a hand-rolled
//! recursive-descent JSON reader: the workspace is hermetic (no serde,
//! no registry dependencies), and the subset of JSON we emit — objects,
//! arrays, strings, finite numbers, booleans — is small enough that
//! owning the code beats owning the dependency. Floats are printed with
//! Rust's shortest round-trip formatting, so parse(serialize(doc))
//! reproduces the document exactly.
//!
//! Malformed input fails with a typed [`SchemaError`], distinguishing
//! truncation (the common artifact-upload failure) from corruption, and
//! schema/version mismatches from structural field errors.

use std::fmt::Write as _;

use super::stats::SampleStats;

/// Schema identifier stamped into every document.
pub const SCHEMA_NAME: &str = "ora-meter/bench";
/// Current schema version. Bump on any incompatible shape change.
pub const SCHEMA_VERSION: u64 = 1;

/// One meter run over one suite — the root of a `BENCH_*.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Suite key (`epcc` / `npb`).
    pub suite: String,
    /// Work-sizing scale key (`quick` / `full`).
    pub scale: String,
    /// OpenMP thread count of the measured runtime.
    pub threads: usize,
    /// Warmup repetitions discarded before sampling.
    pub warmup: usize,
    /// Timed repetitions collected per configuration.
    pub target_reps: usize,
    /// Unit of `median`/`ci`/`min`/`max`/`mad` fields.
    pub unit: String,
    /// Synchronization-core configuration active during the run, if the
    /// producer recorded it. Optional for backward compatibility:
    /// documents written before this field existed parse with `None`.
    pub sync_config: Option<SyncConfig>,
    /// Per-workload results.
    pub workloads: Vec<WorkloadResult>,
}

/// The runtime's synchronization configuration at measurement time —
/// which barrier algorithm ran and what the spin budgets were. Two
/// documents with different blocks here are measuring different code
/// paths and should not be ratio-gated against each other blindly.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncConfig {
    /// Active barrier algorithm (`central` / `tree`).
    pub barrier: String,
    /// Spin iterations before parking in short waits (locks).
    pub spin_budget_short: u64,
    /// Spin iterations before parking in long waits (barriers, doorbells).
    pub spin_budget_long: u64,
}

/// Results of one workload across all collector configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Workload name (`parallel`, `cg`, …).
    pub name: String,
    /// Work units (directive instances / region calls) per repetition.
    pub work_units: u64,
    /// One entry per collector configuration, in ladder order.
    pub configs: Vec<ConfigResult>,
}

impl WorkloadResult {
    /// The entry for configuration `key`, if present.
    pub fn config(&self, key: &str) -> Option<&ConfigResult> {
        self.configs.iter().find(|c| c.config == key)
    }
}

/// One workload × one collector configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigResult {
    /// Collector configuration key (`absent`/`paused`/`state`/`trace`).
    pub config: String,
    /// Analyzed repetition statistics (seconds per repetition).
    pub stats: SampleStats,
    /// Median slowdown relative to the `absent` configuration of the
    /// same run (1.0 for `absent` itself). This is the machine-portable
    /// number: absolute medians move with the hardware, ratios mostly
    /// don't — so regression gating compares ratios.
    pub overhead_ratio: f64,
    /// Conservative lower bound of the ratio (config CI low over absent
    /// CI high).
    pub ratio_ci_lo: f64,
    /// Conservative upper bound of the ratio.
    pub ratio_ci_hi: f64,
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// Input ended mid-value — the typical truncated-artifact failure.
    Truncated {
        /// Byte offset where input ran out.
        offset: usize,
    },
    /// Input contains bytes that are not the JSON we emit.
    Syntax {
        /// Byte offset of the offending input.
        offset: usize,
        /// What was found there.
        found: String,
    },
    /// The document parses as JSON but lacks a required field.
    MissingField(String),
    /// A field holds the wrong JSON type.
    WrongType {
        /// Dotted path of the field.
        field: String,
        /// Expected JSON type.
        expected: &'static str,
    },
    /// The `schema` stamp names a different document family.
    WrongSchema {
        /// The stamp found in the document.
        found: String,
    },
    /// The `schema_version` is newer than this reader supports.
    UnsupportedVersion {
        /// Version found in the document.
        found: u64,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Truncated { offset } => {
                write!(f, "input truncated at byte {offset}")
            }
            SchemaError::Syntax { offset, found } => {
                write!(f, "JSON syntax error at byte {offset}: found {found:?}")
            }
            SchemaError::MissingField(field) => write!(f, "missing field {field:?}"),
            SchemaError::WrongType { field, expected } => {
                write!(f, "field {field:?} is not of type {expected}")
            }
            SchemaError::WrongSchema { found } => write!(
                f,
                "not an {SCHEMA_NAME} document (schema stamp is {found:?})"
            ),
            SchemaError::UnsupportedVersion { found } => write!(
                f,
                "schema version {found} is newer than supported version {SCHEMA_VERSION}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // Shortest round-trip formatting; the schema has no use for NaN or
    // infinities, and emitting them would not be valid JSON.
    debug_assert!(v.is_finite(), "non-finite value in bench document");
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

impl BenchDoc {
    /// Serialize to the canonical pretty-printed JSON (stable key order,
    /// two-space indent — committed baselines should diff cleanly).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(4096);
        o.push_str("{\n");
        o.push_str(&format!("  \"schema\": \"{SCHEMA_NAME}\",\n"));
        o.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        o.push_str("  \"suite\": ");
        push_json_string(&mut o, &self.suite);
        o.push_str(",\n  \"scale\": ");
        push_json_string(&mut o, &self.scale);
        let _ = write!(o, ",\n  \"threads\": {}", self.threads);
        let _ = write!(o, ",\n  \"warmup\": {}", self.warmup);
        let _ = write!(o, ",\n  \"target_reps\": {}", self.target_reps);
        o.push_str(",\n  \"unit\": ");
        push_json_string(&mut o, &self.unit);
        if let Some(sc) = &self.sync_config {
            o.push_str(",\n  \"config\": {\n    \"barrier\": ");
            push_json_string(&mut o, &sc.barrier);
            let _ = write!(o, ",\n    \"spin_budget_short\": {}", sc.spin_budget_short);
            let _ = write!(o, ",\n    \"spin_budget_long\": {}", sc.spin_budget_long);
            o.push_str("\n  }");
        }
        o.push_str(",\n  \"workloads\": [");
        for (i, w) in self.workloads.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("\n    {\n      \"name\": ");
            push_json_string(&mut o, &w.name);
            let _ = write!(o, ",\n      \"work_units\": {}", w.work_units);
            o.push_str(",\n      \"configs\": [");
            for (j, c) in w.configs.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                o.push_str("\n        {\n          \"config\": ");
                push_json_string(&mut o, &c.config);
                let _ = write!(o, ",\n          \"reps\": {}", c.stats.reps);
                let _ = write!(o, ",\n          \"rejected\": {}", c.stats.rejected);
                for (key, v) in [
                    ("median", c.stats.median),
                    ("ci95_lo", c.stats.ci_lo),
                    ("ci95_hi", c.stats.ci_hi),
                    ("mad", c.stats.mad),
                    ("min", c.stats.min),
                    ("max", c.stats.max),
                    ("overhead_ratio", c.overhead_ratio),
                    ("ratio_ci_lo", c.ratio_ci_lo),
                    ("ratio_ci_hi", c.ratio_ci_hi),
                ] {
                    let _ = write!(o, ",\n          \"{key}\": ");
                    push_f64(&mut o, v);
                }
                o.push_str("\n        }");
            }
            o.push_str("\n      ]\n    }");
        }
        o.push_str("\n  ]\n}\n");
        o
    }

    /// Parse a document, validating the schema stamp and version.
    pub fn from_json(input: &str) -> Result<BenchDoc, SchemaError> {
        let value = parse_json(input)?;
        let root = value.as_object("$")?;

        let stamp = root.get_str("schema")?;
        if stamp != SCHEMA_NAME {
            return Err(SchemaError::WrongSchema {
                found: stamp.to_string(),
            });
        }
        let version = root.get_u64("schema_version")?;
        if version > SCHEMA_VERSION {
            return Err(SchemaError::UnsupportedVersion { found: version });
        }

        let mut workloads = Vec::new();
        for (i, wv) in root.get_array("workloads")?.iter().enumerate() {
            let path = format!("workloads[{i}]");
            let w = wv.as_object(&path)?;
            let mut configs = Vec::new();
            for (j, cv) in w.get_array("configs")?.iter().enumerate() {
                let cpath = format!("{path}.configs[{j}]");
                let c = cv.as_object(&cpath)?;
                configs.push(ConfigResult {
                    config: c.get_str("config")?.to_string(),
                    stats: SampleStats {
                        reps: c.get_u64("reps")? as usize,
                        rejected: c.get_u64("rejected")? as usize,
                        median: c.get_f64("median")?,
                        ci_lo: c.get_f64("ci95_lo")?,
                        ci_hi: c.get_f64("ci95_hi")?,
                        mad: c.get_f64("mad")?,
                        min: c.get_f64("min")?,
                        max: c.get_f64("max")?,
                    },
                    overhead_ratio: c.get_f64("overhead_ratio")?,
                    ratio_ci_lo: c.get_f64("ratio_ci_lo")?,
                    ratio_ci_hi: c.get_f64("ratio_ci_hi")?,
                });
            }
            workloads.push(WorkloadResult {
                name: w.get_str("name")?.to_string(),
                work_units: w.get_u64("work_units")?,
                configs,
            });
        }

        let sync_config = match root.maybe("config") {
            None => None,
            Some(v) => {
                let c = v.as_object("$.config")?;
                Some(SyncConfig {
                    barrier: c.get_str("barrier")?.to_string(),
                    spin_budget_short: c.get_u64("spin_budget_short")?,
                    spin_budget_long: c.get_u64("spin_budget_long")?,
                })
            }
        };

        Ok(BenchDoc {
            suite: root.get_str("suite")?.to_string(),
            scale: root.get_str("scale")?.to_string(),
            threads: root.get_u64("threads")? as usize,
            warmup: root.get_u64("warmup")? as usize,
            target_reps: root.get_u64("target_reps")? as usize,
            unit: root.get_str("unit")?.to_string(),
            sync_config,
            workloads,
        })
    }

    /// The workload named `name`, if present.
    pub fn workload(&self, name: &str) -> Option<&WorkloadResult> {
        self.workloads.iter().find(|w| w.name == name)
    }
}

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------

/// A parsed JSON value (the subset the schema emits).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct ObjectView<'a> {
    path: String,
    fields: &'a [(String, Json)],
}

impl Json {
    fn as_object<'a>(&'a self, path: &str) -> Result<ObjectView<'a>, SchemaError> {
        match self {
            Json::Object(fields) => Ok(ObjectView {
                path: path.to_string(),
                fields,
            }),
            _ => Err(SchemaError::WrongType {
                field: path.to_string(),
                expected: "object",
            }),
        }
    }
}

impl ObjectView<'_> {
    /// Optional-field lookup: absent is `None`, not an error.
    fn maybe(&self, key: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get(&self, key: &str) -> Result<&Json, SchemaError> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| SchemaError::MissingField(format!("{}.{key}", self.path)))
    }

    fn get_str(&self, key: &str) -> Result<&str, SchemaError> {
        match self.get(key)? {
            Json::String(s) => Ok(s),
            _ => Err(SchemaError::WrongType {
                field: format!("{}.{key}", self.path),
                expected: "string",
            }),
        }
    }

    fn get_f64(&self, key: &str) -> Result<f64, SchemaError> {
        match self.get(key)? {
            Json::Number(n) => Ok(*n),
            _ => Err(SchemaError::WrongType {
                field: format!("{}.{key}", self.path),
                expected: "number",
            }),
        }
    }

    fn get_u64(&self, key: &str) -> Result<u64, SchemaError> {
        let n = self.get_f64(key)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Ok(n as u64)
        } else {
            Err(SchemaError::WrongType {
                field: format!("{}.{key}", self.path),
                expected: "non-negative integer",
            })
        }
    }

    fn get_array(&self, key: &str) -> Result<&[Json], SchemaError> {
        match self.get(key)? {
            Json::Array(items) => Ok(items),
            _ => Err(SchemaError::WrongType {
                field: format!("{}.{key}", self.path),
                expected: "array",
            }),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(input: &str) -> Result<Json, SchemaError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(SchemaError::Syntax {
            offset: p.pos,
            found: p.peek_context(),
        });
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek_context(&self) -> String {
        let end = (self.pos + 12).min(self.bytes.len());
        String::from_utf8_lossy(&self.bytes[self.pos..end]).into_owned()
    }

    fn truncated(&self) -> SchemaError {
        SchemaError::Truncated { offset: self.pos }
    }

    fn expect(&mut self, b: u8) -> Result<(), SchemaError> {
        match self.bytes.get(self.pos) {
            Some(&found) if found == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(SchemaError::Syntax {
                offset: self.pos,
                found: self.peek_context(),
            }),
            None => Err(self.truncated()),
        }
    }

    fn value(&mut self) -> Result<Json, SchemaError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            None => Err(self.truncated()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b) if b.is_ascii_digit() || *b == b'-' => self.number(),
            Some(_) => Err(SchemaError::Syntax {
                offset: self.pos,
                found: self.peek_context(),
            }),
        }
    }

    fn literal(&mut self, lit: &[u8], value: Json) -> Result<Json, SchemaError> {
        let end = self.pos + lit.len();
        if end > self.bytes.len() {
            // A prefix of a valid literal at EOF is truncation, not noise.
            if lit.starts_with(&self.bytes[self.pos..]) {
                self.pos = self.bytes.len();
                return Err(self.truncated());
            }
            return Err(SchemaError::Syntax {
                offset: self.pos,
                found: self.peek_context(),
            });
        }
        if &self.bytes[self.pos..end] == lit {
            self.pos = end;
            Ok(value)
        } else {
            Err(SchemaError::Syntax {
                offset: self.pos,
                found: self.peek_context(),
            })
        }
    }

    fn object(&mut self) -> Result<Json, SchemaError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                return Err(self.truncated());
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                Some(_) => {
                    return Err(SchemaError::Syntax {
                        offset: self.pos,
                        found: self.peek_context(),
                    })
                }
                None => return Err(self.truncated()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, SchemaError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                Some(_) => {
                    return Err(SchemaError::Syntax {
                        offset: self.pos,
                        found: self.peek_context(),
                    })
                }
                None => return Err(self.truncated()),
            }
        }
    }

    fn string(&mut self) -> Result<String, SchemaError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.truncated()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        None => return Err(self.truncated()),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                self.pos = self.bytes.len();
                                return Err(self.truncated());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => {
                                    return Err(SchemaError::Syntax {
                                        offset: self.pos,
                                        found: self.peek_context(),
                                    })
                                }
                            }
                        }
                        Some(_) => {
                            return Err(SchemaError::Syntax {
                                offset: self.pos,
                                found: self.peek_context(),
                            })
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(s) };
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, SchemaError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // A bare "-" or "1e" at EOF is a truncated number.
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Number(n)),
            Err(_) if self.pos == self.bytes.len() => Err(self.truncated()),
            Err(_) => Err(SchemaError::Syntax {
                offset: start,
                found: text.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> BenchDoc {
        let stats = SampleStats {
            reps: 7,
            rejected: 1,
            median: 1.25e-3,
            ci_lo: 1.1e-3,
            ci_hi: 1.4e-3,
            mad: 5.0e-5,
            min: 1.05e-3,
            max: 1.5e-3,
        };
        BenchDoc {
            suite: "epcc".into(),
            scale: "quick".into(),
            threads: 2,
            warmup: 1,
            target_reps: 7,
            unit: "seconds/rep".into(),
            sync_config: Some(SyncConfig {
                barrier: "central".into(),
                spin_budget_short: 64,
                spin_budget_long: 2000,
            }),
            workloads: vec![WorkloadResult {
                name: "parallel".into(),
                work_units: 96,
                configs: vec![
                    ConfigResult {
                        config: "absent".into(),
                        stats,
                        overhead_ratio: 1.0,
                        ratio_ci_lo: 1.0,
                        ratio_ci_hi: 1.0,
                    },
                    ConfigResult {
                        config: "trace".into(),
                        stats: SampleStats {
                            median: 1.5e-3,
                            ..stats
                        },
                        overhead_ratio: 1.2,
                        ratio_ci_lo: 1.05,
                        ratio_ci_hi: 1.35,
                    },
                ],
            }],
        }
    }

    #[test]
    fn serialize_parse_round_trips_exactly() {
        let doc = sample_doc();
        let json = doc.to_json();
        let parsed = BenchDoc::from_json(&json).unwrap();
        assert_eq!(parsed, doc);
        // And the second serialization is byte-identical (canonical form).
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn document_is_self_describing() {
        let json = sample_doc().to_json();
        assert!(json.contains("\"schema\": \"ora-meter/bench\""));
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"unit\": \"seconds/rep\""));
    }

    #[test]
    fn config_block_is_optional_for_backward_compatibility() {
        // A pre-config-block document (the seed baselines) must parse.
        let mut doc = sample_doc();
        doc.sync_config = None;
        let json = doc.to_json();
        assert!(!json.contains("\n  \"config\": {"));
        let parsed = BenchDoc::from_json(&json).unwrap();
        assert_eq!(parsed.sync_config, None);
        assert_eq!(parsed, doc);
        // And a document carrying the block round-trips it.
        let parsed = BenchDoc::from_json(&sample_doc().to_json()).unwrap();
        let sc = parsed.sync_config.expect("config block present");
        assert_eq!(sc.barrier, "central");
        assert_eq!((sc.spin_budget_short, sc.spin_budget_long), (64, 2000));
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let json = sample_doc().to_json();
        for cut in [json.len() / 4, json.len() / 2, json.len() - 2] {
            let err = BenchDoc::from_json(&json[..cut]).unwrap_err();
            assert!(
                matches!(err, SchemaError::Truncated { .. }),
                "cut at {cut}: got {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_a_typed_error() {
        let json = sample_doc()
            .to_json()
            .replace("\"workloads\": [", "\"workloads\": @");
        assert!(matches!(
            BenchDoc::from_json(&json).unwrap_err(),
            SchemaError::Syntax { .. }
        ));
    }

    #[test]
    fn wrong_schema_and_version_are_rejected() {
        let json = sample_doc().to_json();
        let other = json.replace("ora-meter/bench", "other/doc");
        assert!(matches!(
            BenchDoc::from_json(&other).unwrap_err(),
            SchemaError::WrongSchema { .. }
        ));
        let future = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert_eq!(
            BenchDoc::from_json(&future).unwrap_err(),
            SchemaError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn missing_field_and_wrong_type_are_reported_with_paths() {
        let json = sample_doc()
            .to_json()
            .replace("\"work_units\": 96", "\"xx\": 96");
        match BenchDoc::from_json(&json).unwrap_err() {
            SchemaError::MissingField(f) => assert!(f.contains("work_units"), "{f}"),
            e => panic!("expected MissingField, got {e:?}"),
        }
        let json = sample_doc()
            .to_json()
            .replace("\"work_units\": 96", "\"work_units\": \"lots\"");
        match BenchDoc::from_json(&json).unwrap_err() {
            SchemaError::WrongType { field, .. } => assert!(field.contains("work_units")),
            e => panic!("expected WrongType, got {e:?}"),
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut doc = sample_doc();
        doc.workloads[0].name = "we\"ird\\name\n\u{1}".into();
        let parsed = BenchDoc::from_json(&doc.to_json()).unwrap();
        assert_eq!(parsed.workloads[0].name, doc.workloads[0].name);
    }

    #[test]
    fn empty_input_is_truncated() {
        assert_eq!(
            BenchDoc::from_json("").unwrap_err(),
            SchemaError::Truncated { offset: 0 }
        );
        assert_eq!(
            BenchDoc::from_json("   ").unwrap_err(),
            SchemaError::Truncated { offset: 3 }
        );
    }

    #[test]
    fn trailing_garbage_is_syntax_error() {
        let json = format!("{}extra", sample_doc().to_json());
        assert!(matches!(
            BenchDoc::from_json(&json).unwrap_err(),
            SchemaError::Syntax { .. }
        ));
    }
}
