//! Statistics pipeline for the meter — now shared with the in-process
//! overhead governor.
//!
//! The implementation moved verbatim to [`ora_core::stats`] so the
//! governor ([`ora_core::governor`]) can run the identical MAD-reject +
//! seeded-bootstrap machinery inside its online calibration windows;
//! committed `BENCH_*.json` CIs keep reproducing bit-for-bit because the
//! policy defaults (including the bootstrap seed) travelled unchanged.
//! This module re-exports the pipeline under its historical meter path.

pub use ora_core::stats::{
    analyze, bootstrap_ci_median, mad, median, reject_outliers, SampleStats, StatPolicy, MAD_SCALE,
};
