//! # ora-meter — statistically rigorous overhead measurement
//!
//! The paper's headline result is the *measured cost* of ORA collection
//! (§V: EPCC syncbench and NPB overheads). This subsystem turns that
//! experiment into an enforced invariant of the codebase:
//!
//! * [`runner`] runs each workload under the five-rung
//!   collector-intrusiveness ladder (absent / registered-paused /
//!   state-queries / streaming-trace / governed, [`collector::modes`])
//!   with per-repetition timing;
//! * [`stats`] makes the numbers defensible — warmup discard happens in
//!   the runner, then MAD outlier rejection with a minimum-repetition
//!   rule and a seeded 95% bootstrap CI of the median;
//! * [`schema`] serializes results as versioned, self-describing
//!   `BENCH_<suite>.json` documents (hand-rolled JSON both ways — the
//!   workspace stays hermetic);
//! * [`compare`] gates regressions: a cell fails only when its overhead
//!   ratio moved past the threshold *and* the confidence intervals are
//!   disjoint.
//!
//! Front end: `omp_prof bench run|compare` (see `src/bin/omp_prof.rs`);
//! CI wiring: the `perf-smoke` job in `.github/workflows/ci.yml` against
//! the committed baselines in `results/baselines/`.

pub mod compare;
pub mod runner;
pub mod schema;
pub mod stats;

pub use compare::{compare, CompareError, CompareReport, Regression, Shift};
pub use runner::{run_suite, run_suite_with_progress, RunnerConfig, UNIT};
pub use schema::{
    BenchDoc, ConfigResult, SchemaError, SyncConfig, WorkloadResult, SCHEMA_NAME, SCHEMA_VERSION,
};
pub use stats::{
    analyze, bootstrap_ci_median, mad, median, reject_outliers, SampleStats, StatPolicy,
};
