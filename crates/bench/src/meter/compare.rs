//! Baseline comparison — the perf-regression gate.
//!
//! `compare(old, new, threshold)` walks every `(workload, configuration)`
//! cell present in the baseline and decides whether the new run regressed
//! it. The gated quantity is the **overhead ratio** (config median over
//! absent median of the same run), not the absolute median: absolute
//! repetition times move with the machine, so a baseline recorded on one
//! box would spuriously fail on a faster or slower one, while the
//! slowdown a collector configuration imposes is a property of the code.
//!
//! A cell regresses only when *both* hold:
//!
//! 1. the new overhead ratio exceeds the old by more than
//!    `threshold_pct` percent (the practical-significance test), and
//! 2. the move survives the most favorable reading of both confidence
//!    intervals: the new ratio's CI low exceeds the old ratio's CI high
//!    by more than the threshold. This implies the CIs are disjoint and
//!    means a noisy run widens its CI and refuses to fire the gate
//!    rather than producing a false alarm.
//!
//! A workload present in the baseline but missing from the new run is an
//! [`Incomparable`](CompareError::Incomparable) error: silently dropping
//! a workload is exactly how a regression hides.

use super::schema::{BenchDoc, ConfigResult};

/// One regressed `(workload, configuration)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Workload name.
    pub workload: String,
    /// Collector-configuration key.
    pub config: String,
    /// Baseline overhead ratio.
    pub old_ratio: f64,
    /// New overhead ratio.
    pub new_ratio: f64,
    /// Percent increase of the ratio.
    pub pct_change: f64,
}

/// One cell that moved but did not meet both regression criteria (for
/// report-only output).
#[derive(Debug, Clone, PartialEq)]
pub struct Shift {
    /// Workload name.
    pub workload: String,
    /// Collector-configuration key.
    pub config: String,
    /// Percent change of the overhead ratio (signed).
    pub pct_change: f64,
    /// Whether the ratio CIs overlapped (true ⇒ not significant).
    pub ci_overlap: bool,
}

/// Outcome of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareReport {
    /// Cells failing both criteria — non-empty means *gate closed*.
    pub regressions: Vec<Regression>,
    /// Cells that moved past the threshold but with overlapping CIs, or
    /// moved significantly but under the threshold. Informational.
    pub shifts: Vec<Shift>,
    /// Cells examined.
    pub cells: usize,
}

impl CompareReport {
    /// True when the gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary table.
    pub fn render(&self, threshold_pct: f64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compared {} cells at threshold {threshold_pct}%: {} regression(s), {} shift(s)",
            self.cells,
            self.regressions.len(),
            self.shifts.len()
        );
        for r in &self.regressions {
            let _ = writeln!(
                out,
                "  REGRESSION {}/{}: overhead ratio {:.3} -> {:.3} (+{:.1}%, CIs disjoint)",
                r.workload, r.config, r.old_ratio, r.new_ratio, r.pct_change
            );
        }
        for s in &self.shifts {
            let _ = writeln!(
                out,
                "  shift      {}/{}: {:+.1}%{}",
                s.workload,
                s.config,
                s.pct_change,
                if s.ci_overlap {
                    " (CIs overlap — not significant)"
                } else {
                    ""
                }
            );
        }
        out
    }
}

/// Why two documents cannot be compared at all.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// The documents measure different suites or scales.
    Mismatched {
        /// What differs (`suite` / `scale`).
        what: &'static str,
        /// Baseline value.
        old: String,
        /// New value.
        new: String,
    },
    /// A baseline workload or configuration is missing from the new run.
    Incomparable {
        /// Dotted `workload[.config]` that disappeared.
        missing: String,
    },
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompareError::Mismatched { what, old, new } => {
                write!(
                    f,
                    "documents differ in {what}: baseline {old:?} vs new {new:?}"
                )
            }
            CompareError::Incomparable { missing } => write!(
                f,
                "baseline cell {missing:?} is missing from the new run — \
                 dropped workloads can hide regressions"
            ),
        }
    }
}

impl std::error::Error for CompareError {}

fn ratio_cis_overlap(old: &ConfigResult, new: &ConfigResult) -> bool {
    !(new.ratio_ci_lo > old.ratio_ci_hi || old.ratio_ci_lo > new.ratio_ci_hi)
}

/// Compare `new` against the `old` baseline at `threshold_pct`.
pub fn compare(
    old: &BenchDoc,
    new: &BenchDoc,
    threshold_pct: f64,
) -> Result<CompareReport, CompareError> {
    if old.suite != new.suite {
        return Err(CompareError::Mismatched {
            what: "suite",
            old: old.suite.clone(),
            new: new.suite.clone(),
        });
    }
    if old.scale != new.scale {
        return Err(CompareError::Mismatched {
            what: "scale",
            old: old.scale.clone(),
            new: new.scale.clone(),
        });
    }

    let mut report = CompareReport {
        regressions: Vec::new(),
        shifts: Vec::new(),
        cells: 0,
    };

    for old_w in &old.workloads {
        let Some(new_w) = new.workload(&old_w.name) else {
            return Err(CompareError::Incomparable {
                missing: old_w.name.clone(),
            });
        };
        for old_c in &old_w.configs {
            let Some(new_c) = new_w.config(&old_c.config) else {
                return Err(CompareError::Incomparable {
                    missing: format!("{}.{}", old_w.name, old_c.config),
                });
            };
            report.cells += 1;
            // The absent rung is the normalizer; its ratio is 1.0 by
            // construction and carries no regression signal.
            if old_c.config == "absent" {
                continue;
            }
            if old_c.overhead_ratio <= 0.0 {
                continue;
            }
            let pct_change =
                (new_c.overhead_ratio - old_c.overhead_ratio) / old_c.overhead_ratio * 100.0;
            let past_threshold = pct_change > threshold_pct;
            let significant = !ratio_cis_overlap(old_c, new_c);
            // Robustness: even pairing the new CI's low end with the old
            // CI's high end, the ratio moved by more than the threshold.
            let robust = new_c.ratio_ci_lo > old_c.ratio_ci_hi * (1.0 + threshold_pct / 100.0);
            if past_threshold && robust {
                report.regressions.push(Regression {
                    workload: old_w.name.clone(),
                    config: old_c.config.clone(),
                    old_ratio: old_c.overhead_ratio,
                    new_ratio: new_c.overhead_ratio,
                    pct_change,
                });
            } else if past_threshold || (significant && pct_change.abs() > threshold_pct / 2.0) {
                report.shifts.push(Shift {
                    workload: old_w.name.clone(),
                    config: old_c.config.clone(),
                    pct_change,
                    ci_overlap: !significant,
                });
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::schema::{ConfigResult, WorkloadResult};
    use crate::meter::stats::SampleStats;

    fn cell(config: &str, ratio: f64, lo: f64, hi: f64) -> ConfigResult {
        ConfigResult {
            config: config.into(),
            stats: SampleStats {
                reps: 7,
                rejected: 0,
                median: ratio * 1e-3,
                ci_lo: ratio * 0.95e-3,
                ci_hi: ratio * 1.05e-3,
                mad: 1e-5,
                min: ratio * 0.9e-3,
                max: ratio * 1.1e-3,
            },
            overhead_ratio: ratio,
            ratio_ci_lo: lo,
            ratio_ci_hi: hi,
        }
    }

    fn doc(ratios: &[(&str, f64, f64, f64)]) -> BenchDoc {
        BenchDoc {
            suite: "epcc".into(),
            scale: "quick".into(),
            threads: 2,
            warmup: 1,
            target_reps: 7,
            unit: "seconds/rep".into(),
            sync_config: None,
            workloads: vec![WorkloadResult {
                name: "parallel".into(),
                work_units: 96,
                configs: ratios
                    .iter()
                    .map(|(k, r, lo, hi)| cell(k, *r, *lo, *hi))
                    .collect(),
            }],
        }
    }

    #[test]
    fn self_compare_passes() {
        let d = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.3, 1.2, 1.4)]);
        let report = compare(&d, &d, 10.0).unwrap();
        assert!(report.passed());
        assert_eq!(report.cells, 2);
    }

    #[test]
    fn planted_regression_fires_when_cis_disjoint() {
        let old = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.2, 1.15, 1.25)]);
        let new = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.5, 1.4, 1.6)]);
        let report = compare(&old, &new, 10.0).unwrap();
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert_eq!(r.config, "trace");
        assert!(r.pct_change > 10.0);
    }

    #[test]
    fn overlapping_cis_suppress_the_gate() {
        // Ratio moved +25% but the intervals overlap: noisy, not a gate.
        let old = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.2, 0.9, 1.6)]);
        let new = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.5, 1.1, 1.9)]);
        let report = compare(&old, &new, 10.0).unwrap();
        assert!(report.passed());
        assert_eq!(report.shifts.len(), 1);
        assert!(report.shifts[0].ci_overlap);
    }

    #[test]
    fn sub_threshold_moves_pass() {
        let old = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.20, 1.19, 1.21)]);
        let new = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.25, 1.24, 1.26)]);
        let report = compare(&old, &new, 10.0).unwrap();
        assert!(report.passed(), "+4.2% is under the 10% threshold");
    }

    #[test]
    fn missing_workload_is_incomparable() {
        let old = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.2, 1.1, 1.3)]);
        let mut new = old.clone();
        new.workloads[0].name = "renamed".into();
        assert!(matches!(
            compare(&old, &new, 10.0).unwrap_err(),
            CompareError::Incomparable { .. }
        ));
    }

    #[test]
    fn missing_config_is_incomparable() {
        let old = doc(&[("absent", 1.0, 1.0, 1.0), ("trace", 1.2, 1.1, 1.3)]);
        let new = doc(&[("absent", 1.0, 1.0, 1.0)]);
        match compare(&old, &new, 10.0).unwrap_err() {
            CompareError::Incomparable { missing } => assert_eq!(missing, "parallel.trace"),
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn suite_mismatch_is_rejected() {
        let old = doc(&[("absent", 1.0, 1.0, 1.0)]);
        let mut new = old.clone();
        new.suite = "npb".into();
        assert!(matches!(
            compare(&old, &new, 10.0).unwrap_err(),
            CompareError::Mismatched { what: "suite", .. }
        ));
    }
}
