//! # ora-bench — experiment harnesses for every table and figure
//!
//! Binaries (run with `cargo run -p ora-bench --release --bin <name>`):
//!
//! | binary           | reproduces | notes |
//! |------------------|------------|-------|
//! | `fig4_epcc`      | Fig. 4     | EPCC directive overhead %, per thread count |
//! | `fig5_npb`       | Fig. 5     | NPB3.2-OMP overhead %, 1/2/4/8 threads |
//! | `fig6_npb_mz`    | Fig. 6     | NPB3.2-MZ overhead %, 1×8/2×4/4×2/8×1 |
//! | `table1_regions` | Table I    | parallel-region counts, measured via fork events |
//! | `table2_mz`      | Table II   | per-process region calls, computed + measured |
//! | `breakdown`      | §V-B       | measurement vs communication overhead split |
//!
//! All binaries accept `--scale smoke|quick|paper` (default `quick`).
//! The [`meter`] module is the statistically rigorous successor to the
//! ad-hoc harnesses: `omp_prof bench run` measures every workload under
//! the four collector configurations and emits versioned
//! `BENCH_<suite>.json` documents; `omp_prof bench compare` is the CI
//! perf-regression gate over those documents.
//! Micro-benches (`cargo bench -p ora-bench --features bench`) cover the
//! micro costs the paper argues about: event-dispatch fast path,
//! always-on state stores, callstack capture, wire protocol, and the
//! barrier/schedule ablations. They run on the dependency-free
//! [`microbench`] harness and are gated behind the off-by-default
//! `bench` feature so default builds stay hermetic.

#![warn(missing_docs)]

pub mod fleet_driver;
pub mod meter;
pub mod microbench;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long, paper-shaped run (class B-sim structure).
    Paper,
    /// Seconds-long run preserving the structure (class W / reduced reps).
    Quick,
    /// Sub-second smoke run (class S).
    Smoke,
}

impl Scale {
    /// Parse from the common `--scale` argument (default `quick`).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for pair in args.windows(2) {
            if pair[0] == "--scale" {
                return match pair[1].as_str() {
                    "paper" => Scale::Paper,
                    "smoke" => Scale::Smoke,
                    _ => Scale::Quick,
                };
            }
        }
        if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Quick
        }
    }

    /// The NPB class for this scale.
    pub fn npb_class(self) -> workloads::NpbClass {
        match self {
            Scale::Paper => workloads::NpbClass::Bsim,
            Scale::Quick => workloads::NpbClass::W,
            Scale::Smoke => workloads::NpbClass::S,
        }
    }

    /// Repetitions for best-of timing.
    pub fn reps(self) -> usize {
        match self {
            Scale::Paper | Scale::Quick => 3,
            Scale::Smoke => 1,
        }
    }
}

/// A caveat line when thread counts exceed hardware threads.
pub fn oversubscription_note(max_threads: usize) -> Option<String> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (max_threads > cores).then(|| {
        format!(
            "note: up to {max_threads} threads on {cores} hardware thread(s); \
             absolute times are oversubscribed, overhead ratios remain meaningful"
        )
    })
}

/// Format an overhead percentage the way the paper's figures do (values
/// below 1% are listed as zero).
pub fn fmt_pct(pct: f64) -> String {
    if pct < 1.0 {
        "0".to_string()
    } else {
        format!("{pct:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_maps_to_classes() {
        assert_eq!(Scale::Paper.npb_class(), workloads::NpbClass::Bsim);
        assert_eq!(Scale::Quick.npb_class(), workloads::NpbClass::W);
        assert_eq!(Scale::Smoke.npb_class(), workloads::NpbClass::S);
    }

    #[test]
    fn pct_formatting_zeroes_sub_one() {
        assert_eq!(fmt_pct(0.4), "0");
        assert_eq!(fmt_pct(5.23), "5.2");
        assert_eq!(fmt_pct(16.0), "16.0");
    }

    #[test]
    fn oversubscription_note_triggers_above_core_count() {
        assert!(oversubscription_note(100_000).is_some());
    }
}
