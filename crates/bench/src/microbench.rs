//! A dependency-free micro-benchmark harness with a criterion-shaped API.
//!
//! The workspace builds hermetically — no registry crates — so the
//! `[[bench]]` targets cannot link the real `criterion`. This module
//! keeps their source unchanged in shape: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId::new`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros all exist with the
//! same call signatures the benches already use.
//!
//! Measurement only happens when the off-by-default `bench` feature is
//! enabled:
//!
//! ```text
//! cargo bench -p ora-bench --features bench
//! ```
//!
//! Without the feature, every bench binary prints a one-line hint and
//! exits successfully, so `cargo bench` / `cargo test --all-targets`
//! stay fast and hermetic.
//!
//! Methodology: each benchmark calibrates an iteration batch that runs
//! for at least ~1 ms, then times `sample_size` such batches and reports
//! the min / mean / max nanoseconds per iteration. That is cruder than
//! criterion's bootstrapped confidence intervals but needs nothing
//! beyond `std::time::Instant`, and the paper's arguments rest on
//! order-of-magnitude comparisons (one load vs a lock), which this
//! resolves comfortably.

use std::fmt::Display;
use std::hint::black_box;
use std::time::Instant;

/// Default number of timed batches per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 30;

/// Calibration target per batch, in nanoseconds (~1 ms).
const TARGET_BATCH_NANOS: u128 = 1_000_000;

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    benches_run: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
            benches_run: 0,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        BenchmarkGroup {
            c: self,
            name,
            sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        let sample_size = self.sample_size;
        self.run_one(&label, sample_size, &mut f);
        self
    }

    /// How many benchmarks this harness has executed.
    pub fn benches_run(&self) -> usize {
        self.benches_run
    }

    fn run_one<F>(&mut self, label: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        self.benches_run += 1;
        report(label, &b.samples);
    }
}

/// A group of benchmarks sharing a name prefix and sample size,
/// mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.c.run_one(&label, sample_size, &mut f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size;
        self.c
            .run_one(&label, sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (kept for criterion API parity; no-op).
    pub fn finish(self) {}
}

/// A function + parameter benchmark label, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label `function_name` applied to `parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Label made of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures handed to it, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `f`, called in calibrated batches. Nanoseconds per call
    /// are recorded across [`sample_size`](BenchmarkGroup::sample_size)
    /// batches.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Calibrate: grow the batch until one batch takes ~1 ms (or the
        // batch is already huge, for sub-nanosecond bodies).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= TARGET_BATCH_NANOS || iters >= 1 << 24 {
                break;
            }
            // Aim straight for the target from the observed rate.
            let scale = (TARGET_BATCH_NANOS / elapsed.max(1)).clamp(2, 1 << 10);
            iters = (iters * scale as u64).min(1 << 24);
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / iters as f64);
        }
    }
}

/// Print one result line: `label  time: [min mean max]` per iteration.
fn report(label: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{label:<50} (no samples — Bencher::iter never called)");
        return;
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

/// Render nanoseconds with criterion-style unit scaling.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::microbench::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Define `main` running the given groups, mirroring
/// `criterion::criterion_main!`. Without the `bench` feature the binary
/// prints a hint and exits 0, keeping default builds hermetic and fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !cfg!(feature = "bench") {
                println!(
                    "{}: measurement is gated off by default; run \
                     `cargo bench -p ora-bench --features bench` to measure",
                    env!("CARGO_CRATE_NAME")
                );
                return;
            }
            let mut c = $crate::microbench::Criterion::default();
            $( $group(&mut c); )+
            println!("ran {} benchmark(s)", c.benches_run());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_sample_count() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        assert_eq!(c.benches_run(), 1);
        assert!(runs > 0);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| x * x);
        });
        g.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
    }

    #[test]
    fn nanosecond_formatting_scales_units() {
        assert_eq!(fmt_ns(15.0), "15.00 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
    }
}
