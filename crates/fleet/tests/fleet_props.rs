//! Fleet properties: wire robustness, end-to-end merge fidelity, and
//! fault isolation.
//!
//! Three families:
//!
//! 1. **Wire protocol** — seeded property tests: round-trip of random
//!    messages, truncation at every byte boundary, bit-flip corruption
//!    anywhere in a frame stream. Every malformed input yields a typed
//!    [`FleetError`], never a panic.
//! 2. **End-to-end merge** — N ranks record through real
//!    ring→drainer→`SocketSink` pipelines into one daemon over loopback
//!    sockets, teeing local trace files; the daemon's export must be
//!    byte-identical to offline `merge_ranks` over those files and the
//!    per-lane ACK/drop accounting must reconcile exactly.
//! 3. **Quarantine / degradation** — an epoch replay, an epoch gap, a
//!    fault-injected (corrupting) transport, and a rank killed mid-run
//!    each degrade exactly one lane; the rest of the fleet's merged
//!    output is untouched.

use std::path::PathBuf;

use ora_core::testutil::XorShift64;
use ora_fleet::protocol::{encode_frame, read_frame, write_frame};
use ora_fleet::{
    loopback, timeline_bytes, ConnFaultMode, Daemon, DaemonConfig, FaultConn, FleetError, Message,
    SocketSink,
};
use ora_trace::{
    merge_ranks, DropPolicy, RawRecord, Recorder, RecordingStats, TraceConfig, TraceReader,
};

fn quiet_config(lanes: usize, capacity_per_lane: usize) -> TraceConfig {
    TraceConfig {
        lanes,
        capacity_per_lane,
        policy: DropPolicy::Newest,
        epoch: std::time::Duration::from_secs(3600),
        ..TraceConfig::default()
    }
}

fn rec(tick: u64, gtid: u32, seq_hint: u64) -> RawRecord {
    RawRecord {
        tick,
        gtid,
        event: 1, // Fork
        region_id: seq_hint / 16,
        ..RawRecord::default()
    }
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ora_fleet_{}_{name}.oratrace", std::process::id()))
}

fn random_message(rng: &mut XorShift64) -> Message {
    match rng.below(5) {
        0 => Message::Hello {
            rank: rng.next_u64(),
            format_version: (rng.next_u64() & 0xffff) as u16,
            ticks_per_sec: rng.next_u64(),
        },
        1 => {
            let len = rng.below(64) as usize;
            let payload = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            Message::Chunk {
                epoch: rng.next_u64(),
                payload,
            }
        }
        2 => Message::Ack {
            epoch: rng.next_u64(),
        },
        3 => Message::Fin {
            observed: rng.next_u64(),
            drained: rng.next_u64(),
            dropped: rng.next_u64(),
        },
        _ => Message::FinAck {
            stored: rng.next_u64(),
            late: rng.next_u64(),
        },
    }
}

// ---------------------------------------------------------------------
// 1. Wire protocol robustness.
// ---------------------------------------------------------------------

#[test]
fn random_messages_round_trip() {
    let mut rng = XorShift64::new(0xf1ee_0001);
    for _ in 0..500 {
        let msg = random_message(&mut rng);
        let frame = encode_frame(&msg);
        let mut cursor = &frame[..];
        assert_eq!(read_frame(&mut cursor).unwrap(), msg);
        assert!(cursor.is_empty());
    }
}

#[test]
fn truncation_anywhere_in_a_stream_is_a_typed_error() {
    let mut rng = XorShift64::new(0xf1ee_0002);
    let mut stream = Vec::new();
    for _ in 0..8 {
        stream.extend_from_slice(&encode_frame(&random_message(&mut rng)));
    }
    for cut in 0..stream.len() {
        let mut cursor = &stream[..cut];
        // Read until the stream runs out; the final result must be a
        // typed error (or a clean Closed exactly at a frame boundary).
        loop {
            match read_frame(&mut cursor) {
                Ok(_) => continue,
                Err(FleetError::Closed) | Err(FleetError::Truncated) => break,
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
    }
}

#[test]
fn bit_flips_never_panic_and_never_pass_crc() {
    let mut rng = XorShift64::new(0xf1ee_0003);
    for _ in 0..300 {
        let msg = random_message(&mut rng);
        let mut frame = encode_frame(&msg);
        let at = rng.below(frame.len() as u64) as usize;
        let bit = 1u8 << rng.below(8);
        frame[at] ^= bit;
        let mut cursor = &frame[..];
        match read_frame(&mut cursor) {
            // A flip inside the length prefix can reframe the stream;
            // whatever it decodes to must then fail somewhere typed.
            Ok(m) => assert!(
                at < 4,
                "flip at {at} (content byte) slipped past the CRC: {m:?}"
            ),
            Err(e) => {
                let _ = e.to_string(); // Display never panics either
            }
        }
    }
}

#[test]
fn unknown_message_tags_are_refused() {
    let mut frame = encode_frame(&Message::Ack { epoch: 9 });
    frame[4] = 0x7f; // tag byte
                     // Fix up the CRC so only the tag is wrong.
    let len = frame.len();
    let crc = ora_trace::format::crc32(&frame[4..len - 4]).to_le_bytes();
    frame[len - 4..].copy_from_slice(&crc);
    assert_eq!(
        read_frame(&mut &frame[..]),
        Err(FleetError::UnknownMessage(0x7f))
    );
}

// ---------------------------------------------------------------------
// 2. End-to-end: loopback fleet, export fidelity, accounting.
// ---------------------------------------------------------------------

/// Stream `batch` through a real recorder into `daemon` as `rank`,
/// teeing to a temp file. Returns the stats and the tee path.
fn stream_rank(
    daemon: &mut Daemon,
    rank: u64,
    batch: Vec<RawRecord>,
    test: &str,
) -> (RecordingStats, PathBuf) {
    let (client, server) = loopback().unwrap();
    daemon.spawn_conn(server);
    let tee = temp_path(&format!("{test}_r{rank}"));
    let sink = SocketSink::start(client, rank, 1_000_000_000, 4)
        .unwrap()
        .tee(&tee)
        .unwrap();
    let recorder = Recorder::start(quiet_config(2, 4096), sink).expect("recorder");
    for r in &batch {
        recorder.rings().record(*r);
    }
    let (sink, stats) = recorder.finish().expect("finish");
    let fin = sink
        .finish(
            stats.drained() + stats.dropped(),
            stats.drained(),
            stats.dropped(),
        )
        .expect("fin handshake");
    assert_eq!(fin.stored, stats.drained(), "rank {rank} FIN-ACK stored");
    (stats, tee)
}

fn rank_batch(rng: &mut XorShift64, n: u64) -> Vec<RawRecord> {
    (0..n)
        .map(|i| rec(10_000 + rng.below(64), rng.below(4) as u32, i))
        .collect()
}

#[test]
fn loopback_fleet_export_matches_offline_merge() {
    let mut rng = XorShift64::new(0xf1ee_0010);
    let mut daemon = Daemon::new(DaemonConfig::default());
    let mut tees = Vec::new();
    for rank in 0..4u64 {
        let (stats, tee) = stream_rank(&mut daemon, rank, rank_batch(&mut rng, 400), "e2e");
        assert_eq!(stats.dropped(), 0);
        tees.push(tee);
    }
    let report = daemon.finish();

    // Every lane finished, saw header + footer, and reconciles.
    assert_eq!(report.lanes.len(), 4);
    for lane in &report.lanes {
        assert!(lane.finished, "rank {} finished", lane.rank);
        assert!(lane.header_seen);
        assert!(lane.quarantined.is_none());
        assert!(lane.reconciled(), "rank {} accounting", lane.rank);
        assert_eq!(lane.records, 400);
    }
    assert!(report.reconciled());
    assert_eq!(report.store.len(), 1600);

    // The online export is byte-identical to the offline merge of the
    // teed per-rank files.
    let readers: Vec<TraceReader> = tees
        .iter()
        .map(|p| TraceReader::open(p).expect("tee file decodes"))
        .collect();
    let offline = merge_ranks(&readers).unwrap();
    assert_eq!(report.store.export(), timeline_bytes(&offline));

    // Queries agree with filtering the merged timeline.
    let all = report.store.records().to_vec();
    for rank in 0..4usize {
        let want: Vec<_> = all.iter().copied().filter(|e| e.rank == rank).collect();
        assert_eq!(report.store.for_rank(rank), want);
    }
    let want_range: Vec<_> = all
        .iter()
        .copied()
        .filter(|e| (10_010..=10_040).contains(&e.record.tick))
        .collect();
    assert_eq!(report.store.time_range(10_010, 10_040), want_range);
    let want_region: Vec<_> = all
        .iter()
        .copied()
        .filter(|e| e.record.region_id == 3)
        .collect();
    assert_eq!(report.store.for_region(3), want_region);

    for tee in tees {
        let _ = std::fs::remove_file(tee);
    }
}

#[test]
fn concurrent_ranks_merge_identically_to_offline() {
    let mut daemon = Daemon::new(DaemonConfig {
        // Slow consumer: exercises the producer-side ACK window.
        slow_chunk: std::time::Duration::from_micros(200),
    });
    let mut tees = Vec::new();
    let mut conns = Vec::new();
    for rank in 0..3u64 {
        let (client, server) = loopback().unwrap();
        daemon.spawn_conn(server);
        conns.push((rank, client));
    }
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for (rank, client) in conns {
            let tee = temp_path(&format!("conc_r{rank}"));
            tees.push(tee.clone());
            joins.push(scope.spawn(move || {
                let mut rng = XorShift64::new(0xf1ee_0020 ^ rank);
                let sink = SocketSink::start(client, rank, 1_000_000_000, 2)
                    .unwrap()
                    .tee(&tee)
                    .unwrap();
                let recorder = Recorder::start(quiet_config(2, 4096), sink).unwrap();
                for i in 0..500u64 {
                    recorder
                        .rings()
                        .record(rec(20_000 + rng.below(128), rng.below(4) as u32, i));
                }
                let (sink, stats) = recorder.finish().unwrap();
                sink.finish(stats.drained(), stats.drained(), 0).unwrap();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    });
    let report = daemon.finish();
    assert!(report.reconciled());
    assert_eq!(report.store.len(), 1500);
    let readers: Vec<TraceReader> = tees.iter().map(|p| TraceReader::open(p).unwrap()).collect();
    assert_eq!(
        report.store.export(),
        timeline_bytes(&merge_ranks(&readers).unwrap())
    );
    for tee in tees {
        let _ = std::fs::remove_file(tee);
    }
}

// ---------------------------------------------------------------------
// 3. Quarantine and single-lane degradation.
// ---------------------------------------------------------------------

#[test]
fn epoch_replay_and_gap_quarantine_the_lane() {
    for (bad_epoch, expect) in [(0u64, "re-sent"), (7, "expected")] {
        let mut daemon = Daemon::new(DaemonConfig::default());
        let (mut client, server) = loopback().unwrap();
        daemon.spawn_conn(server);
        write_frame(
            &mut client,
            &Message::Hello {
                rank: 5,
                format_version: ora_trace::format::FORMAT_VERSION,
                ticks_per_sec: 1,
            },
        )
        .unwrap();
        // Epoch 0: the trace header, accepted and acked.
        let mut header = Vec::new();
        ora_trace::format::encode_header(&mut header);
        write_frame(
            &mut client,
            &Message::Chunk {
                epoch: 0,
                payload: header.clone(),
            },
        )
        .unwrap();
        assert_eq!(read_frame(&mut client).unwrap(), Message::Ack { epoch: 0 });
        // Misbehave: replay epoch 0 / skip to epoch 7.
        write_frame(
            &mut client,
            &Message::Chunk {
                epoch: bad_epoch,
                payload: header.clone(),
            },
        )
        .unwrap();
        // The daemon quarantines and closes; no ACK arrives.
        assert!(read_frame(&mut client).is_err());
        let report = daemon.finish();
        let lane = report.lane(5).expect("lane exists");
        let why = lane.quarantined.as_deref().expect("quarantined");
        assert!(why.contains(expect), "{why}");
        assert!(!lane.finished);
    }
}

#[test]
fn corrupting_transport_quarantines_only_its_lane() {
    let mut daemon = Daemon::new(DaemonConfig::default());

    // A healthy rank 0 completes its stream.
    let (_, tee) = stream_rank(
        &mut daemon,
        0,
        (0..200).map(|i| rec(30_000 + i, 0, i)).collect(),
        "quar",
    );

    // Rank 1 streams through a transport that corrupts every byte after
    // the HELLO + header frames made it through clean.
    let (client, server) = loopback().unwrap();
    daemon.spawn_conn(server);
    let faulty = Box::new(FaultConn::new(client, 64, ConnFaultMode::Corrupt));
    let sink = SocketSink::start(faulty, 1, 1_000_000_000, 4).unwrap();
    let recorder = Recorder::start(quiet_config(1, 256), sink).unwrap();
    for i in 0..100u64 {
        recorder.rings().record(rec(30_000 + i, 0, i));
    }
    // The daemon drops the lane on the first corrupt frame; the
    // producer sees the dead socket as a drainer failure (degraded
    // recording), exactly like a failing file sink.
    let _ = recorder.finish();

    let report = daemon.finish();
    let healthy = report.lane(0).unwrap();
    assert!(healthy.finished && healthy.reconciled());
    let bad = report.lane(1).expect("lane 1 registered via clean HELLO");
    assert!(bad.quarantined.is_some(), "corrupt lane quarantined");

    // Rank 0's merged output is exactly its offline trace — the
    // quarantined lane did not perturb it.
    let reader = TraceReader::open(&tee).unwrap();
    let offline = merge_ranks(&[reader]).unwrap();
    let surviving: Vec<_> = report
        .store
        .records()
        .iter()
        .copied()
        .filter(|e| e.rank == 0)
        .collect();
    assert_eq!(timeline_bytes(&surviving), timeline_bytes(&offline));
    let _ = std::fs::remove_file(tee);
}

#[test]
fn killed_rank_degrades_only_its_lane() {
    let mut daemon = Daemon::new(DaemonConfig::default());

    let (_, tee0) = stream_rank(
        &mut daemon,
        0,
        (0..300).map(|i| rec(40_000 + i, 0, i)).collect(),
        "kill",
    );

    // Rank 1 sends HELLO + a few chunks, then its process "dies": the
    // connection drops with no FIN.
    {
        let (client, server) = loopback().unwrap();
        daemon.spawn_conn(server);
        let sink = SocketSink::start(client, 1, 1_000_000_000, 4).unwrap();
        let recorder = Recorder::start(quiet_config(1, 256), sink).unwrap();
        for i in 0..50u64 {
            recorder.rings().record(rec(40_000 + i, 0, i));
        }
        let (sink, _) = recorder.finish().unwrap();
        drop(sink); // no FIN handshake — the rank is gone
    }

    let report = daemon.finish();
    let dead = report.lane(1).expect("killed lane registered");
    assert!(!dead.finished);
    assert!(dead.quarantined.is_some(), "disconnect recorded");

    // Rank 0 is whole: finished, reconciled, and byte-identical to its
    // offline trace within the merged store.
    let lane0 = report.lane(0).unwrap();
    assert!(lane0.finished && lane0.reconciled());
    let offline = merge_ranks(&[TraceReader::open(&tee0).unwrap()]).unwrap();
    let surviving: Vec<_> = report
        .store
        .records()
        .iter()
        .copied()
        .filter(|e| e.rank == 0)
        .collect();
    assert_eq!(timeline_bytes(&surviving), timeline_bytes(&offline));
    let _ = std::fs::remove_file(tee0);
}

#[test]
fn version_mismatch_is_rejected_before_a_lane_exists() {
    let mut daemon = Daemon::new(DaemonConfig::default());
    let (mut client, server) = loopback().unwrap();
    daemon.spawn_conn(server);
    write_frame(
        &mut client,
        &Message::Hello {
            rank: 9,
            format_version: 0xbeef,
            ticks_per_sec: 1,
        },
    )
    .unwrap();
    assert!(read_frame(&mut client).is_err(), "daemon closes");
    let report = daemon.finish();
    assert!(report.lanes.is_empty());
    assert_eq!(report.rejected.len(), 1);
    assert!(
        report.rejected[0].contains("version"),
        "{:?}",
        report.rejected
    );
}
