//! The producer side: a [`SocketSink`] streaming a recording live.
//!
//! `ora_trace::Recorder` writes its sink exactly one self-contained
//! unit per call — the 8-byte file header at start, one encoded chunk
//! per drainer sweep, the footer at finish — so the sink frames each
//! `write_all` as one epoch-stamped CHUNK message, verbatim. No
//! re-encoding happens on the hot path.
//!
//! **Backpressure.** The sink keeps at most `window` unacked chunks in
//! flight; past that it blocks on the daemon's ACKs. A slow daemon
//! therefore slows the *drainer* (which is off the application's
//! critical path) and, if the ring then fills, loss shows up in the
//! ring's own drop counters — the same observable-loss philosophy as
//! local recording, extended over the wire.
//!
//! **Failure.** Any protocol or transport error surfaces as
//! `io::Error` from `write_all`, which the drainer's supervision turns
//! into a degraded recording (counted drops, typed `DrainerFailed`) —
//! a dead daemon never wedges or crashes the profiled rank.
//!
//! **Tee.** With [`SocketSink::tee`] the sink also appends every byte
//! to a local trace file, so a rank both streams live and leaves the
//! offline artifact `merge_ranks` reads — the fleet driver uses this to
//! prove the online merge byte-identical to the offline one.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use ora_trace::TraceSink;

use crate::protocol::{read_frame, write_frame, Message};
use crate::transport::{connect, Endpoint, FrameConn};
use crate::FleetError;

/// Default bound on unacked in-flight chunks.
pub const DEFAULT_WINDOW: u64 = 8;

/// What the daemon reported in FIN-ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinReport {
    /// Records the daemon stored for this lane.
    pub stored: u64,
    /// Records (fleet-wide) that settled below the watermark.
    pub late: u64,
}

/// A `TraceSink` that streams the recording to an aggregator daemon,
/// one CHUNK frame per sink write, with bounded-window backpressure and
/// an optional local tee.
pub struct SocketSink {
    conn: Box<dyn FrameConn>,
    next_epoch: u64,
    acked: u64,
    window: u64,
    tee: Option<BufWriter<File>>,
}

impl SocketSink {
    /// Introduce `rank` over an established connection: sends HELLO and
    /// returns the ready sink.
    pub fn start(
        mut conn: Box<dyn FrameConn>,
        rank: u64,
        ticks_per_sec: u64,
        window: u64,
    ) -> Result<SocketSink, FleetError> {
        write_frame(
            &mut conn,
            &Message::Hello {
                rank,
                format_version: ora_trace::format::FORMAT_VERSION,
                ticks_per_sec,
            },
        )?;
        conn.flush()?;
        Ok(SocketSink {
            conn,
            next_epoch: 0,
            acked: 0,
            window: window.max(1),
            tee: None,
        })
    }

    /// Connect to the daemon at `endpoint` and introduce `rank`.
    pub fn connect(
        endpoint: &Endpoint,
        rank: u64,
        ticks_per_sec: u64,
        window: u64,
    ) -> Result<SocketSink, FleetError> {
        SocketSink::start(connect(endpoint)?, rank, ticks_per_sec, window)
    }

    /// Also append every streamed byte to a local trace file at `path`
    /// (truncating it), so the rank leaves the offline artifact too.
    pub fn tee(mut self, path: impl AsRef<Path>) -> io::Result<SocketSink> {
        self.tee = Some(BufWriter::new(File::create(path)?));
        Ok(self)
    }

    /// Chunks sent so far (the next epoch number).
    pub fn epochs_sent(&self) -> u64 {
        self.next_epoch
    }

    fn wait_ack(&mut self) -> Result<(), FleetError> {
        match read_frame(&mut self.conn)? {
            Message::Ack { epoch } => {
                if epoch != self.acked {
                    return Err(FleetError::Protocol("ack out of order"));
                }
                self.acked += 1;
                Ok(())
            }
            _ => Err(FleetError::Protocol("expected ACK")),
        }
    }

    /// Close the stream: drain outstanding ACKs, send FIN carrying the
    /// producer's ring accounting, and wait for the daemon's FIN-ACK.
    pub fn finish(
        mut self,
        observed: u64,
        drained: u64,
        dropped: u64,
    ) -> Result<FinReport, FleetError> {
        if let Some(tee) = &mut self.tee {
            tee.flush()?;
        }
        while self.acked < self.next_epoch {
            self.wait_ack()?;
        }
        write_frame(
            &mut self.conn,
            &Message::Fin {
                observed,
                drained,
                dropped,
            },
        )?;
        self.conn.flush()?;
        match read_frame(&mut self.conn)? {
            Message::FinAck { stored, late } => Ok(FinReport { stored, late }),
            _ => Err(FleetError::Protocol("expected FIN-ACK")),
        }
    }
}

impl TraceSink for SocketSink {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(tee) = &mut self.tee {
            tee.write_all(bytes)?;
        }
        write_frame(
            &mut self.conn,
            &Message::Chunk {
                epoch: self.next_epoch,
                payload: bytes.to_vec(),
            },
        )?;
        self.next_epoch += 1;
        while self.next_epoch - self.acked > self.window {
            self.wait_ack()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(tee) = &mut self.tee {
            tee.flush()?;
        }
        self.conn.flush()
    }
}
