//! # ora-fleet — online trace aggregation for multi-process profiling
//!
//! The paper's third evaluation axis is hybrid NPB-MZ-MPI: many MPI
//! ranks, each an OpenMP process. `ora-trace` can merge the per-rank
//! trace files offline (`merge_ranks`); this crate turns that into a
//! *service* — each rank streams its trace live to an aggregator
//! daemon, which merges the fleet into one totally-ordered timeline as
//! the ranks run. The pieces:
//!
//! * [`protocol`] — a length-framed, CRC'd wire protocol carrying the
//!   `ora-trace` chunk encoding verbatim: HELLO (rank id, clock info,
//!   trace format version), per-chunk epoch sequence numbers, chunk
//!   ACKs, and a FIN/summary handshake. Every decoding failure is a
//!   typed [`FleetError`], never a panic.
//! * [`transport`] — Unix sockets first, TCP behind the same
//!   [`FrameConn`](transport::FrameConn) trait, plus a same-process
//!   loopback pair and a fault-injecting wrapper for the quarantine
//!   tests.
//! * [`sink`] — [`SocketSink`](sink::SocketSink), a
//!   `ora_trace::TraceSink` that frames each drainer write as one CHUNK
//!   message with a bounded in-flight window (backpressure via ACKs)
//!   and an optional tee to a local trace file.
//! * [`daemon`] — the aggregator: one lane per connected rank with
//!   health/drop counters mirroring the ring accounting, quarantine of
//!   a misbehaving rank instead of poisoning the fleet, and an
//!   incremental k-way merge (reusing `ora_trace::RankMergeHeap`) that
//!   advances a watermark to the minimum acked tick across live lanes.
//! * [`store`] — the queryable merged timeline (time-range / per-rank /
//!   per-region) whose [`export`](store::FleetStore::export) is
//!   byte-identical to offline `merge_ranks` over the same data.
//!
//! The `omp_prof serve` and `omp_prof fleet` subcommands drive this
//! crate end to end. Like the rest of the workspace, it is std-only.

#![warn(missing_docs)]

pub mod daemon;
pub mod protocol;
pub mod sink;
pub mod store;
pub mod transport;

pub use daemon::{Daemon, DaemonConfig, FinStats, FleetReport, LaneReport};
pub use protocol::{Message, MAX_FRAME_LEN, PROTOCOL_VERSION};
pub use sink::{FinReport, SocketSink};
pub use store::{timeline_bytes, FleetStore};
pub use transport::{connect, loopback, ConnFaultMode, Endpoint, FaultConn, FleetListener};

use ora_trace::TraceError;

/// Everything that can go wrong on the fleet wire or in the daemon.
///
/// Malformed, truncated, or corrupt input always surfaces as one of
/// these variants — never a panic — so the daemon can quarantine the
/// offending lane and keep serving the rest of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// An underlying I/O operation failed (message preserved).
    Io(String),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended in the middle of a frame.
    Truncated,
    /// A frame's CRC did not match its contents.
    CrcMismatch {
        /// CRC carried by the frame.
        expected: u32,
        /// CRC computed over the bytes received.
        actual: u32,
    },
    /// A frame announced a length over [`MAX_FRAME_LEN`].
    FrameTooLarge(u64),
    /// A frame carried a message tag this build does not know.
    UnknownMessage(u8),
    /// The peer speaks an incompatible trace format version.
    BadVersion(u16),
    /// A lane re-sent an epoch the daemon already accepted.
    DuplicateEpoch {
        /// The offending rank.
        rank: u64,
        /// The epoch received again.
        epoch: u64,
    },
    /// A lane skipped ahead: an epoch was lost or reordered.
    EpochGap {
        /// The offending rank.
        rank: u64,
        /// The epoch the daemon expected next.
        expected: u64,
        /// The epoch that actually arrived.
        got: u64,
    },
    /// A chunk payload failed to decode as `ora-trace` data.
    Trace(TraceError),
    /// A protocol invariant failed (reason attached).
    Protocol(&'static str),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io(msg) => write!(f, "fleet I/O error: {msg}"),
            FleetError::Closed => write!(f, "peer closed the connection"),
            FleetError::Truncated => write!(f, "stream ended mid-frame"),
            FleetError::CrcMismatch { expected, actual } => write!(
                f,
                "frame corrupt: crc {expected:#010x} carried, {actual:#010x} computed"
            ),
            FleetError::FrameTooLarge(len) => write!(f, "frame length {len} exceeds the limit"),
            FleetError::UnknownMessage(tag) => write!(f, "unknown message tag {tag:#04x}"),
            FleetError::BadVersion(v) => write!(f, "incompatible trace format version {v}"),
            FleetError::DuplicateEpoch { rank, epoch } => {
                write!(f, "rank {rank} re-sent epoch {epoch}")
            }
            FleetError::EpochGap {
                rank,
                expected,
                got,
            } => write!(f, "rank {rank} sent epoch {got}, expected {expected}"),
            FleetError::Trace(e) => write!(f, "chunk payload invalid: {e}"),
            FleetError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> FleetError {
        FleetError::Io(e.to_string())
    }
}

impl From<TraceError> for FleetError {
    fn from(e: TraceError) -> FleetError {
        FleetError::Trace(e)
    }
}

impl From<FleetError> for std::io::Error {
    fn from(e: FleetError) -> std::io::Error {
        std::io::Error::other(e.to_string())
    }
}
