//! Socket transports behind one trait: Unix first, TCP second.
//!
//! Everything above this module speaks [`FrameConn`] — any
//! `Read + Write + Send` byte stream — so the protocol, the producer
//! sink, and the daemon are transport-agnostic. [`Endpoint`] names a
//! listening address in either family and parses from the CLI spelling
//! (`unix:/path/to.sock` or `tcp:host:port`; a bare path means Unix).
//! [`loopback`] gives tests a same-process socketpair, and
//! [`FaultConn`] injects transport faults for the quarantine path.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// A bidirectional byte stream frames travel over.
pub trait FrameConn: Read + Write + Send {}
impl<T: Read + Write + Send> FrameConn for T {}

/// A fleet listening address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP `host:port` address.
    Tcp(String),
}

impl Endpoint {
    /// Parse a CLI endpoint spec: `unix:<path>`, `tcp:<host:port>`, or
    /// a bare path (Unix).
    pub fn parse(spec: &str) -> Endpoint {
        if let Some(path) = spec.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else if let Some(addr) = spec.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_string())
        } else {
            Endpoint::Unix(PathBuf::from(spec))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound listener in either transport family.
pub enum FleetListener {
    /// Listening on a Unix-domain socket.
    Unix(UnixListener),
    /// Listening on a TCP socket.
    Tcp(TcpListener),
}

impl FleetListener {
    /// Bind `endpoint`. A stale Unix socket file left by a previous
    /// daemon is removed first.
    pub fn bind(endpoint: &Endpoint) -> io::Result<FleetListener> {
        match endpoint {
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Ok(FleetListener::Unix(UnixListener::bind(path)?))
            }
            Endpoint::Tcp(addr) => Ok(FleetListener::Tcp(TcpListener::bind(addr.as_str())?)),
        }
    }

    /// The address actually bound — resolves `tcp:127.0.0.1:0` to the
    /// kernel-assigned port.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            FleetListener::Unix(l) => Ok(Endpoint::Unix(
                l.local_addr()?
                    .as_pathname()
                    .map(PathBuf::from)
                    .unwrap_or_default(),
            )),
            FleetListener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
        }
    }

    /// Toggle non-blocking accept (the daemon polls a stop flag).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            FleetListener::Unix(l) => l.set_nonblocking(nonblocking),
            FleetListener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accept one connection as a boxed [`FrameConn`].
    pub fn accept(&self) -> io::Result<Box<dyn FrameConn>> {
        match self {
            FleetListener::Unix(l) => {
                let (conn, _) = l.accept()?;
                conn.set_nonblocking(false)?;
                Ok(Box::new(conn))
            }
            FleetListener::Tcp(l) => {
                let (conn, _) = l.accept()?;
                conn.set_nonblocking(false)?;
                Ok(Box::new(conn))
            }
        }
    }
}

/// Connect to a daemon at `endpoint`.
pub fn connect(endpoint: &Endpoint) -> io::Result<Box<dyn FrameConn>> {
    match endpoint {
        Endpoint::Unix(path) => Ok(Box::new(UnixStream::connect(path)?)),
        Endpoint::Tcp(addr) => Ok(Box::new(TcpStream::connect(addr.as_str())?)),
    }
}

/// A same-process connected pair, for loopback daemons in tests and the
/// fuzzer's socket rung.
pub fn loopback() -> io::Result<(Box<dyn FrameConn>, Box<dyn FrameConn>)> {
    let (a, b) = UnixStream::pair()?;
    Ok((Box::new(a), Box::new(b)))
}

/// How a [`FaultConn`] misbehaves once its byte budget is spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFaultMode {
    /// Every further write fails with an I/O error — the producer sees
    /// a dead daemon and its recording degrades.
    Error,
    /// Every further byte is flipped on the wire — the daemon sees CRC
    /// mismatches and quarantines the lane.
    Corrupt,
}

/// A fault-injecting transport wrapper (the `FaultSink` of the wire):
/// passes `budget` bytes through untouched, then fails according to its
/// [`ConnFaultMode`]. Reads are never perturbed.
pub struct FaultConn {
    inner: Box<dyn FrameConn>,
    budget: usize,
    written: usize,
    mode: ConnFaultMode,
    faults: u64,
}

impl FaultConn {
    /// Wrap `inner`, passing `budget` clean bytes before faulting.
    pub fn new(inner: Box<dyn FrameConn>, budget: usize, mode: ConnFaultMode) -> FaultConn {
        FaultConn {
            inner,
            budget,
            written: 0,
            mode,
            faults: 0,
        }
    }

    /// Writes perturbed so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }
}

impl Read for FaultConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for FaultConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let room = self.budget.saturating_sub(self.written);
        if buf.len() <= room {
            let n = self.inner.write(buf)?;
            self.written += n;
            return Ok(n);
        }
        self.faults += 1;
        match self.mode {
            ConnFaultMode::Error => Err(io::Error::other("injected transport fault")),
            ConnFaultMode::Corrupt => {
                let mut bent = buf.to_vec();
                for b in &mut bent[room..] {
                    *b ^= 0xa5;
                }
                let n = self.inner.write(&bent)?;
                self.written += n;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_specs_parse_and_display() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/fleet.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/fleet.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7777"),
            Endpoint::Tcp("127.0.0.1:7777".to_string())
        );
        assert_eq!(
            Endpoint::parse("/tmp/bare.sock"),
            Endpoint::Unix(PathBuf::from("/tmp/bare.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:[::1]:7777").to_string(),
            "tcp:[::1]:7777"
        );
    }

    #[test]
    fn loopback_carries_bytes_both_ways() {
        let (mut a, mut b) = loopback().unwrap();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn tcp_listener_round_trips_a_frame() {
        let listener = FleetListener::bind(&Endpoint::Tcp("127.0.0.1:0".into())).unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let child = std::thread::spawn(move || {
            let mut conn = connect(&endpoint).unwrap();
            conn.write_all(b"hello over tcp").unwrap();
        });
        let mut conn = listener.accept().unwrap();
        let mut buf = [0u8; 14];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello over tcp");
        child.join().unwrap();
    }

    #[test]
    fn fault_conn_corrupts_only_past_the_budget() {
        let (a, mut b) = loopback().unwrap();
        let mut faulty = FaultConn::new(a, 4, ConnFaultMode::Corrupt);
        faulty.write_all(b"good").unwrap();
        faulty.write_all(b"bad!").unwrap();
        assert_eq!(faulty.faults(), 1);
        let mut buf = [0u8; 8];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf[..4], b"good");
        assert_ne!(&buf[4..], b"bad!");
    }
}
