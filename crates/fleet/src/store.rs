//! The merged fleet timeline: queryable, exportable, byte-stable.
//!
//! The daemon settles records here in `(tick, gtid, seq, rank)` order
//! as the watermark advances. The watermark is a *performance* frontier,
//! not a correctness one: a record can legally arrive below it (a
//! thread can stall between reading the clock and committing to its
//! ring, so a later chunk may carry earlier ticks). Such late records
//! are counted and binary-inserted, so the store is **always** fully
//! sorted and [`FleetStore::export`] is byte-identical to offline
//! `merge_ranks` over the same data, regardless of arrival timing.

use ora_trace::RankedEvent;

/// Magic starting every exported timeline (defined next to the decoder
/// so encode and decode cannot drift).
pub use ora_trace::analyze::TIMELINE_MAGIC;

/// Canonical byte encoding of a merged timeline: magic, record count,
/// then each record's fields as plain varints in key order. Both the
/// daemon's [`FleetStore::export`] and the offline `merge_ranks` path
/// encode through this one function, which is what makes "byte
/// identical" a meaningful equality. (The codec lives in
/// `ora_trace::analyze` so `trace analyze` can consume exports without
/// a dependency cycle.)
pub use ora_trace::analyze::timeline_bytes;

/// The aggregator's merged, totally-ordered event store.
#[derive(Debug, Default)]
pub struct FleetStore {
    /// Settled records, sorted by `(tick, gtid, seq, rank)`.
    settled: Vec<RankedEvent>,
    late_events: u64,
}

impl FleetStore {
    /// An empty store.
    pub fn new() -> FleetStore {
        FleetStore::default()
    }

    /// Settle one record popped off the merge heap. Records normally
    /// arrive in key order; one below the current frontier is counted
    /// late and inserted at its sorted position.
    pub(crate) fn settle(&mut self, ev: RankedEvent) {
        match self.settled.last() {
            Some(last) if last.key() > ev.key() => {
                let key = ev.key();
                let pos = self.settled.partition_point(|e| e.key() <= key);
                self.settled.insert(pos, ev);
                self.late_events += 1;
            }
            _ => self.settled.push(ev),
        }
    }

    /// The merged timeline, in `(tick, gtid, seq, rank)` order.
    pub fn records(&self) -> &[RankedEvent] {
        &self.settled
    }

    /// Settled record count.
    pub fn len(&self) -> usize {
        self.settled.len()
    }

    /// Whether nothing has settled.
    pub fn is_empty(&self) -> bool {
        self.settled.is_empty()
    }

    /// Records that arrived below the watermark frontier (observable
    /// reordering, not loss — they are in the timeline regardless).
    pub fn late_events(&self) -> u64 {
        self.late_events
    }

    /// Records with `lo <= tick <= hi`, located by binary search.
    pub fn time_range(&self, lo: u64, hi: u64) -> Vec<RankedEvent> {
        let start = self.settled.partition_point(|e| e.record.tick < lo);
        let end = self.settled.partition_point(|e| e.record.tick <= hi);
        self.settled[start..end].to_vec()
    }

    /// One rank's records, in timeline order.
    pub fn for_rank(&self, rank: usize) -> Vec<RankedEvent> {
        self.settled
            .iter()
            .copied()
            .filter(|e| e.rank == rank)
            .collect()
    }

    /// One parallel region's records, in timeline order.
    pub fn for_region(&self, region_id: u64) -> Vec<RankedEvent> {
        self.settled
            .iter()
            .copied()
            .filter(|e| e.record.region_id == region_id)
            .collect()
    }

    /// Canonical export of the whole timeline (see [`timeline_bytes`]).
    pub fn export(&self) -> Vec<u8> {
        timeline_bytes(&self.settled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ora_core::event::Event;
    use ora_trace::TraceEvent;

    fn ev(tick: u64, gtid: usize, seq: u64, rank: usize) -> RankedEvent {
        RankedEvent {
            rank,
            record: TraceEvent {
                tick,
                gtid,
                seq,
                event: Event::Fork,
                region_id: tick / 10,
                wait_id: 0,
            },
        }
    }

    #[test]
    fn late_records_are_counted_and_inserted_in_order() {
        let mut store = FleetStore::new();
        store.settle(ev(10, 0, 0, 0));
        store.settle(ev(20, 0, 1, 0));
        store.settle(ev(15, 1, 0, 1)); // below the frontier
        assert_eq!(store.late_events(), 1);
        assert_eq!(store.len(), 3);
        let ticks: Vec<u64> = store.records().iter().map(|e| e.record.tick).collect();
        assert_eq!(ticks, vec![10, 15, 20]);
    }

    #[test]
    fn queries_slice_the_sorted_timeline() {
        let mut store = FleetStore::new();
        for i in 0..50u64 {
            store.settle(ev(i, (i % 3) as usize, i, (i % 2) as usize));
        }
        assert_eq!(store.time_range(10, 19).len(), 10);
        assert_eq!(store.for_rank(0).len(), 25);
        assert_eq!(store.for_region(2).len(), 10);
        assert!(store.time_range(100, 200).is_empty());
    }

    #[test]
    fn export_is_deterministic_and_magic_prefixed() {
        let mut a = FleetStore::new();
        let mut b = FleetStore::new();
        for i in 0..20u64 {
            a.settle(ev(i, 0, i, 0));
            b.settle(ev(i, 0, i, 0));
        }
        assert_eq!(a.export(), b.export());
        assert_eq!(&a.export()[..6], TIMELINE_MAGIC);
        assert_eq!(a.export(), timeline_bytes(a.records()));
    }
}
