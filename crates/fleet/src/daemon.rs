//! The aggregator daemon: one lane per rank, incremental watermark merge.
//!
//! Each accepted connection is one **lane**. The lane thread reads
//! frames, validates the epoch sequence (a duplicate or a gap means the
//! lane is misbehaving), classifies each CHUNK payload by its leading
//! bytes — `ORATRC` header, `0x01` encoded chunk, `0x02` footer — and
//! feeds decoded records into the shared merge heap before acking the
//! epoch.
//!
//! **Watermark merge.** The daemon tracks, per live lane, the largest
//! tick it has acked. The watermark is the minimum of those across live
//! lanes: every record at or below it is safe to emit, because a live
//! lane could still send records anywhere above its own acked tick but
//! (to a good approximation) not below the fleet minimum. Records at or
//! below the watermark settle out of the heap into the [`FleetStore`]
//! incrementally; the rare record that still arrives below the settled
//! frontier is counted late and inserted in place, so the final export
//! is exactly the offline merge regardless of timing (see [`store`]).
//!
//! **Quarantine.** A lane that violates the protocol — bad CRC,
//! epoch replay/gap, undecodable payload, wrong version — is
//! quarantined: its error is recorded, its connection dropped, and its
//! already-settled records stay. The rest of the fleet is untouched —
//! the same degradation philosophy as the ring's drop counters and the
//! drainer's supervision. A lane whose rank process dies mid-run shows
//! up as a disconnect (`finished: false`), degrading only that lane.
//!
//! [`store`]: crate::store

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ora_core::sync::Mutex;
use ora_trace::format::{self, FILE_MAGIC, TAG_CHUNK, TAG_FOOTER};
use ora_trace::{RankMergeHeap, TraceError, TraceEvent};

use crate::protocol::{read_frame, write_frame, Message};
use crate::store::FleetStore;
use crate::transport::{FleetListener, FrameConn};
use crate::FleetError;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Injected delay before acking each chunk — the slow-consumer
    /// fault for stress runs (zero in production).
    pub slow_chunk: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            slow_chunk: Duration::ZERO,
        }
    }
}

/// Producer-side ring accounting carried by FIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinStats {
    /// Events the rank's callbacks observed.
    pub observed: u64,
    /// Records its drainer persisted (and streamed).
    pub drained: u64,
    /// Records it lost to ring backpressure.
    pub dropped: u64,
}

/// One lane's health and accounting, mirroring the ring's per-lane
/// counters on the daemon side.
#[derive(Debug, Clone, Default)]
pub struct LaneReport {
    /// The rank this lane serves.
    pub rank: u64,
    /// Producer clock rate from HELLO.
    pub ticks_per_sec: u64,
    /// Chunk epochs accepted.
    pub epochs: u64,
    /// Records decoded into the merge.
    pub records: u64,
    /// Whether the trace file header arrived.
    pub header_seen: bool,
    /// Per-lane ring accounting from the stream's footer, when it
    /// arrived: `(drained, dropped)`.
    pub footer: Option<(u64, u64)>,
    /// The producer's FIN summary, when the lane closed cleanly.
    pub fin: Option<FinStats>,
    /// Why the lane was quarantined, if it was.
    pub quarantined: Option<String>,
    /// Whether the lane completed the FIN handshake.
    pub finished: bool,
}

impl LaneReport {
    /// Whether this lane's end-to-end accounting reconciles:
    /// the producer's observed events equal the records the daemon
    /// stored plus the drops the rank itself counted, and the footer
    /// agrees with both sides.
    pub fn reconciled(&self) -> bool {
        let (Some(fin), Some((drained, dropped))) = (self.fin, self.footer) else {
            return false;
        };
        fin.observed == self.records + dropped
            && fin.drained == self.records
            && drained == self.records
            && fin.dropped == dropped
    }
}

/// Everything a finished daemon observed.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-lane accounting, ordered by rank.
    pub lanes: Vec<LaneReport>,
    /// The merged timeline.
    pub store: FleetStore,
    /// Connections refused before a lane existed (bad HELLO, version
    /// mismatch, duplicate rank), with reasons.
    pub rejected: Vec<String>,
}

impl FleetReport {
    /// Whether every cleanly-finished, unquarantined lane reconciles
    /// (see [`LaneReport::reconciled`]).
    pub fn reconciled(&self) -> bool {
        self.lanes
            .iter()
            .filter(|l| l.finished && l.quarantined.is_none())
            .all(LaneReport::reconciled)
    }

    /// One lane by rank.
    pub fn lane(&self, rank: u64) -> Option<&LaneReport> {
        self.lanes.iter().find(|l| l.rank == rank)
    }
}

#[derive(Debug, Default)]
struct LaneState {
    report: LaneReport,
    /// Largest tick acked back to this lane.
    acked_tick: u64,
    /// Live = contributing to the watermark: connected, not finished,
    /// not quarantined.
    live: bool,
}

#[derive(Default)]
struct State {
    lanes: BTreeMap<u64, LaneState>,
    heap: RankMergeHeap,
    store: FleetStore,
    rejected: Vec<String>,
}

impl State {
    /// Advance the watermark to the minimum acked tick across live
    /// lanes and settle everything at or below it.
    fn flush(&mut self) {
        let watermark = self
            .lanes
            .values()
            .filter(|l| l.live)
            .map(|l| l.acked_tick)
            .min()
            .unwrap_or(u64::MAX);
        while self.heap.peek_key().is_some_and(|k| k.0 <= watermark) {
            let ev = self.heap.pop().expect("peeked");
            self.store.settle(ev);
        }
    }
}

struct Shared {
    config: DaemonConfig,
    state: Mutex<State>,
    /// Lanes that reached a terminal state (FIN, quarantine, or
    /// disconnect) — the `serve` stop condition.
    done_lanes: Mutex<u64>,
}

/// The aggregator daemon. Connections can be served on caller threads
/// ([`serve_conn`](Daemon::serve_conn), for loopback tests) or spawned
/// ([`spawn_conn`](Daemon::spawn_conn), [`run_listener`](Daemon::run_listener));
/// [`finish`](Daemon::finish) joins everything and yields the
/// [`FleetReport`].
pub struct Daemon {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// A daemon with `config`, serving no connections yet.
    pub fn new(config: DaemonConfig) -> Daemon {
        Daemon {
            shared: Arc::new(Shared {
                config,
                state: Mutex::new(State::default()),
                done_lanes: Mutex::new(0),
            }),
            threads: Vec::new(),
        }
    }

    /// Serve one connection to completion on the calling thread.
    pub fn serve_conn(&self, conn: Box<dyn FrameConn>) {
        serve_connection(&self.shared, conn);
    }

    /// Serve one connection on a new thread.
    pub fn spawn_conn(&mut self, conn: Box<dyn FrameConn>) {
        let shared = Arc::clone(&self.shared);
        self.threads
            .push(std::thread::spawn(move || serve_connection(&shared, conn)));
    }

    /// Lanes that reached a terminal state (finished, quarantined, or
    /// disconnected).
    pub fn done_lanes(&self) -> u64 {
        *self.shared.done_lanes.lock()
    }

    /// Accept and spawn connections until `stop` is set or, when
    /// `until_ranks` is given, that many lanes have reached a terminal
    /// state. The listener is polled non-blocking so shutdown is
    /// prompt.
    pub fn run_listener(
        &mut self,
        listener: &FleetListener,
        stop: &AtomicBool,
        until_ranks: Option<u64>,
    ) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        loop {
            if stop.load(Ordering::Acquire) {
                return Ok(());
            }
            if until_ranks.is_some_and(|n| self.done_lanes() >= n) {
                return Ok(());
            }
            match listener.accept() {
                Ok(conn) => self.spawn_conn(conn),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Join every lane thread, settle everything still buffered, and
    /// report.
    pub fn finish(self) -> FleetReport {
        for t in self.threads {
            let _ = t.join();
        }
        let mut state = self.shared.state.lock();
        state.flush(); // no live lanes remain: flushes everything
        let state = std::mem::take(&mut *state);
        FleetReport {
            lanes: state.lanes.into_values().map(|l| l.report).collect(),
            store: state.store,
            rejected: state.rejected,
        }
    }
}

/// Mark one lane terminal exactly once.
fn lane_done(shared: &Shared) {
    *shared.done_lanes.lock() += 1;
}

fn serve_connection(shared: &Shared, mut conn: Box<dyn FrameConn>) {
    // Handshake: the first frame must be a compatible HELLO for a rank
    // not already connected.
    let (rank, ticks_per_sec) = match read_frame(&mut conn) {
        Ok(Message::Hello {
            rank,
            format_version,
            ticks_per_sec,
        }) => {
            if format_version != format::FORMAT_VERSION {
                shared.state.lock().rejected.push(format!(
                    "rank {rank}: {}",
                    FleetError::BadVersion(format_version)
                ));
                return;
            }
            (rank, ticks_per_sec)
        }
        Ok(_) => {
            shared
                .state
                .lock()
                .rejected
                .push("connection did not open with HELLO".into());
            return;
        }
        Err(e) => {
            shared
                .state
                .lock()
                .rejected
                .push(format!("handshake failed: {e}"));
            return;
        }
    };
    {
        let mut state = shared.state.lock();
        if state.lanes.get(&rank).is_some_and(|l| l.live) {
            state
                .rejected
                .push(format!("rank {rank}: duplicate connection refused"));
            return;
        }
        let lane = state.lanes.entry(rank).or_default();
        lane.report.rank = rank;
        lane.report.ticks_per_sec = ticks_per_sec;
        lane.live = true;
    }

    loop {
        match read_frame(&mut conn) {
            Ok(Message::Chunk { epoch, payload }) => {
                if let Err(e) = ingest_chunk(shared, rank, epoch, &payload) {
                    quarantine(shared, rank, &e);
                    break;
                }
                if !shared.config.slow_chunk.is_zero() {
                    std::thread::sleep(shared.config.slow_chunk);
                }
                if write_frame(&mut conn, &Message::Ack { epoch })
                    .and_then(|()| conn.flush())
                    .is_err()
                {
                    disconnect(shared, rank, "rank stopped reading ACKs");
                    break;
                }
            }
            Ok(Message::Fin {
                observed,
                drained,
                dropped,
            }) => {
                let (stored, late) = finish_lane(
                    shared,
                    rank,
                    FinStats {
                        observed,
                        drained,
                        dropped,
                    },
                );
                let _ = write_frame(&mut conn, &Message::FinAck { stored, late })
                    .and_then(|()| conn.flush());
                break;
            }
            Ok(_) => {
                quarantine(
                    shared,
                    rank,
                    &FleetError::Protocol("unexpected message from producer"),
                );
                break;
            }
            Err(FleetError::Closed) => {
                disconnect(shared, rank, "connection closed before FIN");
                break;
            }
            Err(e) => {
                quarantine(shared, rank, &e);
                break;
            }
        }
    }
}

/// Validate and merge one epoch-stamped payload.
fn ingest_chunk(shared: &Shared, rank: u64, epoch: u64, payload: &[u8]) -> Result<(), FleetError> {
    let mut state = shared.state.lock();
    let lane = state.lanes.get_mut(&rank).expect("lane registered");
    let expected = lane.report.epochs;
    if epoch < expected {
        return Err(FleetError::DuplicateEpoch { rank, epoch });
    }
    if epoch > expected {
        return Err(FleetError::EpochGap {
            rank,
            expected,
            got: epoch,
        });
    }
    lane.report.epochs += 1;

    // Classify the verbatim sink write by its leading bytes.
    match payload.first() {
        Some(_) if payload.starts_with(FILE_MAGIC) => {
            format::decode_header(payload).map_err(|e| match e {
                TraceError::BadVersion(v) => FleetError::BadVersion(v),
                other => FleetError::Trace(other),
            })?;
            if payload.len() != 8 {
                return Err(FleetError::Protocol("header payload has trailing bytes"));
            }
            lane.report.header_seen = true;
        }
        Some(&TAG_CHUNK) => {
            let mut pos = 0usize;
            let (_, raws) = format::decode_chunk(payload, &mut pos)?;
            if pos != payload.len() {
                return Err(FleetError::Protocol("chunk payload has trailing bytes"));
            }
            let mut max_tick = lane.acked_tick;
            let mut events = Vec::with_capacity(raws.len());
            for raw in &raws {
                let event = ora_core::event::Event::from_u32(raw.event)
                    .ok_or(FleetError::Trace(TraceError::UnknownEvent(raw.event)))?;
                max_tick = max_tick.max(raw.tick);
                events.push(TraceEvent {
                    tick: raw.tick,
                    gtid: raw.gtid as usize,
                    seq: raw.seq,
                    event,
                    region_id: raw.region_id,
                    wait_id: raw.wait_id,
                });
            }
            lane.report.records += events.len() as u64;
            lane.acked_tick = max_tick;
            let rank_idx = rank as usize;
            for ev in events {
                state.heap.push(rank_idx, ev);
            }
        }
        Some(&TAG_FOOTER) => {
            let footer = format::decode_footer(payload)?;
            lane.report.footer = Some((footer.total_drained(), footer.total_dropped()));
        }
        _ => return Err(FleetError::Protocol("unclassifiable chunk payload")),
    }
    state.flush();
    Ok(())
}

fn finish_lane(shared: &Shared, rank: u64, fin: FinStats) -> (u64, u64) {
    let mut state = shared.state.lock();
    let lane = state.lanes.get_mut(&rank).expect("lane registered");
    lane.report.fin = Some(fin);
    lane.report.finished = true;
    lane.live = false;
    let stored = lane.report.records;
    state.flush();
    let late = state.store.late_events();
    drop(state);
    lane_done(shared);
    (stored, late)
}

fn quarantine(shared: &Shared, rank: u64, error: &FleetError) {
    let mut state = shared.state.lock();
    if let Some(lane) = state.lanes.get_mut(&rank) {
        lane.report.quarantined = Some(error.to_string());
        lane.live = false;
    }
    state.flush();
    drop(state);
    lane_done(shared);
}

fn disconnect(shared: &Shared, rank: u64, why: &str) {
    let mut state = shared.state.lock();
    if let Some(lane) = state.lanes.get_mut(&rank) {
        // A vanished rank is degradation, not misbehavior: record why,
        // keep what it sent, stop counting it toward the watermark.
        if lane.report.quarantined.is_none() && !lane.report.finished {
            lane.report.quarantined = Some(why.to_string());
        }
        lane.live = false;
    }
    state.flush();
    drop(state);
    lane_done(shared);
}
