//! The fleet wire protocol: length-framed, CRC'd messages.
//!
//! Every message travels as one frame, little-endian throughout:
//!
//! ```text
//! frame := len u32 LE      — bytes in (tag | body), excludes len + crc
//!        | tag u8          — message discriminant
//!        | body            — varint fields (ora-trace LEB128), then
//!                            for CHUNK the raw chunk bytes
//!        | crc32 u32 LE    — IEEE CRC over (tag | body)
//! ```
//!
//! The messages, in handshake order:
//!
//! | tag  | message  | body                                            |
//! |------|----------|-------------------------------------------------|
//! | 0x01 | HELLO    | rank, trace format version, ticks per second    |
//! | 0x02 | CHUNK    | epoch, then one verbatim `ora-trace` write      |
//! | 0x03 | ACK      | epoch                                           |
//! | 0x04 | FIN      | observed, drained, dropped (ring accounting)    |
//! | 0x05 | FIN-ACK  | stored, late (daemon accounting)                |
//!
//! CHUNK payloads are exactly the bytes `ora_trace::Recorder` hands its
//! sink — the 8-byte file header, one encoded chunk, or the footer —
//! so the producer side needs no re-encoding and the daemon classifies
//! each payload by its leading bytes. Epochs are per-lane sequence
//! numbers starting at 0; the daemon acks each epoch and treats a
//! duplicate or a gap as lane misbehavior (see [`crate::daemon`]).

use std::io::{self, Read, Write};

use ora_trace::format::{crc32, get_varint, put_varint};
use ora_trace::TraceError;

use crate::FleetError;

/// Wire protocol version, carried in HELLO alongside the trace format
/// version (both must match for a lane to be accepted).
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on `len`: no legitimate drainer write approaches this,
/// so anything larger is a corrupt or hostile frame, refused before
/// allocation.
pub const MAX_FRAME_LEN: u64 = 16 * 1024 * 1024;

/// HELLO message tag.
pub const MSG_HELLO: u8 = 0x01;
/// CHUNK message tag.
pub const MSG_CHUNK: u8 = 0x02;
/// ACK message tag.
pub const MSG_ACK: u8 = 0x03;
/// FIN message tag.
pub const MSG_FIN: u8 = 0x04;
/// FIN-ACK message tag.
pub const MSG_FIN_ACK: u8 = 0x05;

/// One protocol message (see module docs for the wire layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Lane introduction: first message on every connection.
    Hello {
        /// Rank id of the producing process (its merge key component).
        rank: u64,
        /// `ora_trace::format::FORMAT_VERSION` the producer writes.
        format_version: u16,
        /// Producer clock rate, for cross-rank tick interpretation.
        ticks_per_sec: u64,
    },
    /// One verbatim `ora-trace` sink write, epoch-stamped.
    Chunk {
        /// Per-lane sequence number, starting at 0.
        epoch: u64,
        /// Raw bytes as the recorder wrote them.
        payload: Vec<u8>,
    },
    /// Daemon acknowledgment of one accepted epoch.
    Ack {
        /// The epoch accepted.
        epoch: u64,
    },
    /// Producer-side end-of-stream summary (ring accounting).
    Fin {
        /// Events the producer's callbacks observed.
        observed: u64,
        /// Records its drainer persisted (and therefore streamed).
        drained: u64,
        /// Records it lost to ring backpressure.
        dropped: u64,
    },
    /// Daemon-side close of the FIN handshake.
    FinAck {
        /// Records the daemon stored for this lane.
        stored: u64,
        /// Records (fleet-wide) that settled below the watermark.
        late: u64,
    },
}

/// Decode a varint out of a frame body, mapping the trace-layer error
/// onto the wire-layer vocabulary.
fn body_varint(buf: &[u8], pos: &mut usize) -> Result<u64, FleetError> {
    get_varint(buf, pos).map_err(|e| match e {
        TraceError::Truncated => FleetError::Truncated,
        _ => FleetError::Protocol("malformed varint in frame body"),
    })
}

fn finish_body(buf: &[u8], pos: usize) -> Result<(), FleetError> {
    if pos != buf.len() {
        return Err(FleetError::Protocol("frame body has trailing bytes"));
    }
    Ok(())
}

/// Encode `msg` as one complete frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let (tag, payload): (u8, Option<&[u8]>) = match msg {
        Message::Hello { .. } => (MSG_HELLO, None),
        Message::Chunk { payload, .. } => (MSG_CHUNK, Some(payload)),
        Message::Ack { .. } => (MSG_ACK, None),
        Message::Fin { .. } => (MSG_FIN, None),
        Message::FinAck { .. } => (MSG_FIN_ACK, None),
    };
    let mut body = Vec::new();
    match msg {
        Message::Hello {
            rank,
            format_version,
            ticks_per_sec,
        } => {
            put_varint(&mut body, *rank);
            put_varint(&mut body, u64::from(*format_version));
            put_varint(&mut body, *ticks_per_sec);
        }
        Message::Chunk { epoch, .. } => put_varint(&mut body, *epoch),
        Message::Ack { epoch } => put_varint(&mut body, *epoch),
        Message::Fin {
            observed,
            drained,
            dropped,
        } => {
            put_varint(&mut body, *observed);
            put_varint(&mut body, *drained);
            put_varint(&mut body, *dropped);
        }
        Message::FinAck { stored, late } => {
            put_varint(&mut body, *stored);
            put_varint(&mut body, *late);
        }
    }
    let payload = payload.unwrap_or(&[]);
    let len = 1 + body.len() + payload.len();
    let mut frame = Vec::with_capacity(len + 8);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(tag);
    frame.extend_from_slice(&body);
    frame.extend_from_slice(payload);
    frame.extend_from_slice(&crc32(&frame[4..]).to_le_bytes());
    frame
}

/// Decode the `(tag | body)` section of a frame whose CRC has already
/// been verified.
pub fn decode_frame(framed: &[u8]) -> Result<Message, FleetError> {
    let tag = *framed.first().ok_or(FleetError::Truncated)?;
    let body = &framed[1..];
    let mut pos = 0usize;
    match tag {
        MSG_HELLO => {
            let rank = body_varint(body, &mut pos)?;
            let version = body_varint(body, &mut pos)?;
            let ticks_per_sec = body_varint(body, &mut pos)?;
            finish_body(body, pos)?;
            let format_version = u16::try_from(version)
                .map_err(|_| FleetError::Protocol("format version overflows u16"))?;
            Ok(Message::Hello {
                rank,
                format_version,
                ticks_per_sec,
            })
        }
        MSG_CHUNK => {
            let epoch = body_varint(body, &mut pos)?;
            Ok(Message::Chunk {
                epoch,
                payload: body[pos..].to_vec(),
            })
        }
        MSG_ACK => {
            let epoch = body_varint(body, &mut pos)?;
            finish_body(body, pos)?;
            Ok(Message::Ack { epoch })
        }
        MSG_FIN => {
            let observed = body_varint(body, &mut pos)?;
            let drained = body_varint(body, &mut pos)?;
            let dropped = body_varint(body, &mut pos)?;
            finish_body(body, pos)?;
            Ok(Message::Fin {
                observed,
                drained,
                dropped,
            })
        }
        MSG_FIN_ACK => {
            let stored = body_varint(body, &mut pos)?;
            let late = body_varint(body, &mut pos)?;
            finish_body(body, pos)?;
            Ok(Message::FinAck { stored, late })
        }
        t => Err(FleetError::UnknownMessage(t)),
    }
}

/// Write `msg` as one frame.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    w.write_all(&encode_frame(msg))
}

/// Read one frame, verify its CRC, and decode it.
///
/// A clean close *between* frames is [`FleetError::Closed`]; a close
/// mid-frame is [`FleetError::Truncated`] — the distinction the daemon
/// uses to tell an exited rank from a damaged stream.
pub fn read_frame(r: &mut impl Read) -> Result<Message, FleetError> {
    let mut len_bytes = [0u8; 4];
    // First byte separately: EOF here is a clean close, not truncation.
    match r.read(&mut len_bytes[..1]) {
        Ok(0) => return Err(FleetError::Closed),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(r),
        Err(e) => return Err(FleetError::Io(e.to_string())),
    }
    read_fully(r, &mut len_bytes[1..])?;
    let len = u32::from_le_bytes(len_bytes) as u64;
    if len == 0 {
        return Err(FleetError::Protocol("empty frame"));
    }
    if len > MAX_FRAME_LEN {
        return Err(FleetError::FrameTooLarge(len));
    }
    let mut framed = vec![0u8; len as usize + 4];
    read_fully(r, &mut framed)?;
    let (content, crc_bytes) = framed.split_at(len as usize);
    let expected = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let actual = crc32(content);
    if expected != actual {
        return Err(FleetError::CrcMismatch { expected, actual });
    }
    decode_frame(content)
}

fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FleetError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FleetError::Truncated
        } else {
            FleetError::Io(e.to_string())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let messages = [
            Message::Hello {
                rank: 7,
                format_version: 1,
                ticks_per_sec: 1_000_000_000,
            },
            Message::Chunk {
                epoch: 0,
                payload: b"ORATRC\x01\x00".to_vec(),
            },
            Message::Chunk {
                epoch: u64::MAX,
                payload: Vec::new(),
            },
            Message::Ack { epoch: 3 },
            Message::Fin {
                observed: 100,
                drained: 90,
                dropped: 10,
            },
            Message::FinAck {
                stored: 90,
                late: 2,
            },
        ];
        for msg in &messages {
            let frame = encode_frame(msg);
            let mut cursor = &frame[..];
            assert_eq!(read_frame(&mut cursor).unwrap(), *msg);
            assert!(cursor.is_empty(), "frame fully consumed");
        }
    }

    #[test]
    fn eof_between_frames_is_closed_mid_frame_is_truncated() {
        assert_eq!(read_frame(&mut &[][..]), Err(FleetError::Closed));
        let frame = encode_frame(&Message::Ack { epoch: 1 });
        for cut in 1..frame.len() {
            assert_eq!(
                read_frame(&mut &frame[..cut]),
                Err(FleetError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.push(MSG_ACK);
        assert_eq!(
            read_frame(&mut &bytes[..]),
            Err(FleetError::FrameTooLarge(u64::from(u32::MAX)))
        );
    }
}
