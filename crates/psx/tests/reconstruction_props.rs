//! Property tests on user-model reconstruction: whatever the
//! implementation-model stack looks like, the reconstructed user view is
//! clean (no runtime frames, outlined bodies re-attributed, parents
//! synthesized exactly when missing). Stacks are drawn from a fixed-seed
//! PRNG so runs are deterministic and offline.

use ora_core::testutil::XorShift64;
use psx::symtab::{FrameKind, Ip, SymbolDesc, SymbolTable};
use psx::unwind::Backtrace;

/// Build a world of `n_funcs` user functions, one runtime symbol set, and
/// one outlined body per user function.
struct World {
    table: SymbolTable,
    users: Vec<Ip>,
    runtimes: Vec<Ip>,
    outlined: Vec<Ip>,
}

fn world(n_funcs: usize) -> World {
    let table = SymbolTable::new();
    let users: Vec<Ip> = (0..n_funcs)
        .map(|i| {
            table.register(SymbolDesc::user(
                format!("user{i}"),
                "w.c",
                10 * i as u32 + 1,
            ))
        })
        .collect();
    let runtimes: Vec<Ip> = ["__ompc_fork", "__ompc_ibarrier", "__ompc_static_init_4"]
        .iter()
        .map(|n| table.register(SymbolDesc::runtime(*n)))
        .collect();
    let outlined: Vec<Ip> = users
        .iter()
        .enumerate()
        .map(|(i, &parent)| {
            table.register(SymbolDesc::outlined(
                format!("__ompregion_user{i}_1"),
                "w.c",
                10 * i as u32 + 5,
                parent,
            ))
        })
        .collect();
    World {
        table,
        users,
        runtimes,
        outlined,
    }
}

#[derive(Debug, Clone, Copy)]
enum FramePick {
    User(usize),
    Runtime(usize),
    Outlined(usize),
    Garbage(u64),
}

fn arb_frame(rng: &mut XorShift64, n_funcs: usize) -> FramePick {
    match rng.below(4) {
        0 => FramePick::User(rng.range_usize(0, n_funcs)),
        1 => FramePick::Runtime(rng.range_usize(0, 3)),
        2 => FramePick::Outlined(rng.range_usize(0, n_funcs)),
        _ => FramePick::Garbage(rng.range_i64(0, 1000) as u64),
    }
}

fn arb_picks(rng: &mut XorShift64, n_funcs: usize, max: usize) -> Vec<FramePick> {
    let len = rng.range_usize(0, max);
    (0..len).map(|_| arb_frame(rng, n_funcs)).collect()
}

/// Reconstruction output never contains runtime frames or unresolved
/// garbage, every outlined frame becomes a construct-annotated frame
/// named after a user function, and plain user frames pass through
/// verbatim in order.
#[test]
fn reconstruction_is_clean() {
    let mut rng = XorShift64::new(0x9ec0_0001);
    for _case in 0..256 {
        let picks = arb_picks(&mut rng, 4, 12);
        let w = world(4);
        let ips: Vec<u64> = picks
            .iter()
            .map(|p| match p {
                FramePick::User(i) => w.users[*i].0,
                FramePick::Runtime(i) => w.runtimes[*i].0,
                FramePick::Outlined(i) => w.outlined[*i].0,
                FramePick::Garbage(g) => *g, // below the first allocation
            })
            .collect();
        let bt = Backtrace::from_ips(ips);
        let user = psx::reconstruct(&bt, &w.table);

        // 1. No runtime names, no garbage placeholders.
        for f in &user {
            assert!(!f.name.starts_with("__ompc"), "{f:?}");
            assert!(f.name.starts_with("user"), "{f:?}");
        }

        // 2. Construct-annotated frames appear exactly once per outlined
        //    pick (parents may add extra un-annotated frames).
        let constructs = user.iter().filter(|f| f.construct.is_some()).count();
        let outlined_picks = picks
            .iter()
            .filter(|p| matches!(p, FramePick::Outlined(_)))
            .count();
        assert_eq!(constructs, outlined_picks);

        // 3. The subsequence of plain user frames contains the user picks
        //    in their original order.
        let plain: Vec<&str> = user
            .iter()
            .filter(|f| f.construct.is_none())
            .map(|f| f.name.as_str())
            .collect();
        let expected_user_picks: Vec<String> = picks
            .iter()
            .filter_map(|p| match p {
                FramePick::User(i) => Some(format!("user{i}")),
                _ => None,
            })
            .collect();
        // expected_user_picks must be a subsequence of `plain`.
        let mut it = plain.iter();
        for want in &expected_user_picks {
            assert!(
                it.any(|got| got == want),
                "user frame {want} lost or reordered: {plain:?}"
            );
        }
    }
}

/// A worker-style stack (outlined frame only) always reconstructs to
/// parent + construct.
#[test]
fn lone_outlined_frames_get_parents() {
    for idx in 0..4 {
        let w = world(4);
        let bt = Backtrace::from_ips(vec![w.outlined[idx].0]);
        let user = psx::reconstruct(&bt, &w.table);
        assert_eq!(user.len(), 2);
        let expected = format!("user{idx}");
        assert_eq!(&user[0].name, &expected);
        assert!(user[0].construct.is_none());
        assert_eq!(&user[1].name, &expected);
        assert!(user[1].construct.is_some());
    }
}

/// Resolution is stable: any IP within a registered function's range
/// resolves to that function.
#[test]
fn in_range_ips_resolve() {
    let mut rng = XorShift64::new(0x9ec0_0003);
    for _case in 0..256 {
        let offset = rng.range_i64(0, 0x1000) as u64;
        let w = world(1);
        let info = w.table.resolve(w.users[0].at_offset(offset)).unwrap();
        assert_eq!(&*info.name, "user0");
        assert_eq!(info.kind, FrameKind::User);
    }
}
