//! User-model callstack reconstruction.
//!
//! Performance data is collected against the *implementation model*: the
//! stack a worker thread actually runs contains runtime internals
//! (`__ompc_fork`, barrier calls, …) and compiler-outlined region bodies
//! (`__ompdo_main_1`), and on slave threads it does not even reach back to
//! `main`. The paper's PerfSuite extensions reconstruct the *user model* —
//! the stack as the programmer wrote it — offline, after the application
//! finishes (paper §IV, §IV-F). The rules implemented here:
//!
//! 1. runtime frames are stripped;
//! 2. an outlined frame is re-attributed to its parent user function,
//!    annotated with the construct (and the construct's source line);
//! 3. if the parent frame is missing below an outlined frame (slave
//!    threads start executing directly at the outlined body), the parent
//!    chain is synthesized from the symbol table's parent links.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::symtab::{FrameKind, SymbolTable};
use crate::unwind::Backtrace;

/// One frame of a reconstructed user-model stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UserFrame {
    /// User function name.
    pub name: String,
    /// Source file.
    pub file: String,
    /// Source line (the construct's line for re-attributed frames).
    pub line: u32,
    /// The OpenMP construct executing in this frame, if the frame came
    /// from an outlined body (e.g. `"parallel"`).
    pub construct: Option<String>,
}

impl UserFrame {
    fn label(&self) -> String {
        match &self.construct {
            Some(c) => format!("{} [{}@{}:{}]", self.name, c, self.file, self.line),
            None => format!("{} ({}:{})", self.name, self.file, self.line),
        }
    }
}

/// Reconstruct the user-model stack from an implementation-model capture.
///
/// Frames come back root first. Unresolvable IPs are dropped (they carry
/// no user meaning — matching what a BFD-based tool does with stripped
/// code).
pub fn reconstruct(bt: &Backtrace, table: &SymbolTable) -> Vec<UserFrame> {
    let mut out: Vec<UserFrame> = Vec::new();
    for ip in bt.frames() {
        let Some(info) = table.resolve(ip) else {
            continue;
        };
        match info.kind {
            FrameKind::Runtime => continue,
            FrameKind::User => out.push(UserFrame {
                name: info.name.to_string(),
                file: info.file.to_string(),
                line: info.line,
                construct: None,
            }),
            FrameKind::Outlined => {
                // Synthesize the parent chain if the capture starts at the
                // outlined body (worker threads).
                let mut chain = Vec::new();
                let mut parent = info.parent;
                while let Some(pip) = parent {
                    let Some(pinfo) = table.resolve(pip) else {
                        break;
                    };
                    let already_present = out
                        .iter()
                        .any(|f| f.name == *pinfo.name && f.construct.is_none());
                    if already_present {
                        break;
                    }
                    chain.push(UserFrame {
                        name: pinfo.name.to_string(),
                        file: pinfo.file.to_string(),
                        line: pinfo.line,
                        construct: None,
                    });
                    parent = pinfo.parent;
                }
                // The chain was collected innermost-parent first; the user
                // model wants root first.
                out.extend(chain.into_iter().rev());
                let construct = construct_of(&info.name);
                let parent_name = info
                    .parent
                    .and_then(|p| table.resolve(p))
                    .map(|p| p.name.to_string())
                    .unwrap_or_else(|| info.name.to_string());
                out.push(UserFrame {
                    name: parent_name,
                    file: info.file.to_string(),
                    line: info.line,
                    construct: Some(construct),
                });
            }
        }
    }
    out
}

/// Derive a construct label from an outlined symbol name. The OpenUH
/// convention names outlined bodies `__ompdo_<parent>_<n>` for loops and
/// `__ompregion_<parent>_<n>` for plain regions; anything else is labelled
/// `parallel`.
fn construct_of(name: &str) -> String {
    if name.starts_with("__ompdo_") {
        "parallel for".to_string()
    } else {
        // `__ompregion_*` and anything unrecognized: a plain region.
        "parallel".to_string()
    }
}

/// An aggregated, weighted call tree over user-model stacks — the offline
/// profile a collector assembles after the run.
#[derive(Debug, Default)]
pub struct CallTree {
    roots: BTreeMap<String, Node>,
    total: f64,
}

#[derive(Debug)]
struct Node {
    frame: UserFrame,
    inclusive: f64,
    samples: u64,
    children: BTreeMap<String, Node>,
}

impl CallTree {
    /// An empty tree.
    pub fn new() -> Self {
        CallTree::default()
    }

    /// Add one stack with a weight (e.g. elapsed ticks of the region the
    /// stack was captured for).
    pub fn add(&mut self, stack: &[UserFrame], weight: f64) {
        self.total += weight;
        let mut level = &mut self.roots;
        for frame in stack {
            let node = level.entry(frame.label()).or_insert_with(|| Node {
                frame: frame.clone(),
                inclusive: 0.0,
                samples: 0,
                children: BTreeMap::new(),
            });
            node.inclusive += weight;
            node.samples += 1;
            level = &mut node.children;
        }
    }

    /// Total weight added.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of root frames.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Inclusive weight of the root frame with the given function name.
    pub fn inclusive_of(&self, name: &str) -> f64 {
        self.roots
            .values()
            .filter(|n| n.frame.name == name)
            .map(|n| n.inclusive)
            .sum()
    }

    /// Render an indented text profile, children sorted by label, with
    /// inclusive weight and sample counts per node.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for node in self.roots.values() {
            Self::render_node(node, 0, &mut out);
        }
        out
    }

    /// Render in the "folded stacks" format consumed by flamegraph
    /// tooling: one line per unique stack, `frame;frame;... weight`
    /// (weights scaled to integer microseconds).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        let mut prefix = Vec::new();
        for node in self.roots.values() {
            Self::folded_node(node, &mut prefix, &mut out);
        }
        out
    }

    fn folded_node(node: &Node, prefix: &mut Vec<String>, out: &mut String) {
        prefix.push(node.frame.label());
        // Exclusive weight of this node = inclusive minus children.
        let child_sum: f64 = node.children.values().map(|c| c.inclusive).sum();
        let exclusive = (node.inclusive - child_sum).max(0.0);
        let micros = (exclusive * 1e6).round() as u64;
        if micros > 0 || node.children.is_empty() {
            let _ = writeln!(out, "{} {}", prefix.join(";"), micros);
        }
        for child in node.children.values() {
            Self::folded_node(child, prefix, out);
        }
        prefix.pop();
    }

    fn render_node(node: &Node, depth: usize, out: &mut String) {
        let _ = writeln!(
            out,
            "{:indent$}{}  incl={:.3} samples={}",
            "",
            node.frame.label(),
            node.inclusive,
            node.samples,
            indent = depth * 2
        );
        for child in node.children.values() {
            Self::render_node(child, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame;
    use crate::symtab::{SymbolDesc, SymbolTable};
    use crate::unwind::capture;

    fn demo_table() -> (
        SymbolTable,
        crate::symtab::Ip,
        crate::symtab::Ip,
        crate::symtab::Ip,
    ) {
        let t = SymbolTable::new();
        let main = t.register(SymbolDesc::user("main", "app.c", 3));
        let fork = t.register(SymbolDesc::runtime("__ompc_fork"));
        let outlined = t.register(SymbolDesc::outlined("__ompdo_main_1", "app.c", 12, main));
        (t, main, fork, outlined)
    }

    #[test]
    fn master_thread_stack_reconstructs_in_place() {
        let (t, main, fork, outlined) = demo_table();
        let _m = frame::enter(main);
        let _f = frame::enter(fork);
        let _o = frame::enter(outlined);
        let user = reconstruct(&capture(), &t);
        assert_eq!(user.len(), 2);
        assert_eq!(user[0].name, "main");
        assert_eq!(user[0].construct, None);
        assert_eq!(user[1].name, "main");
        assert_eq!(user[1].construct.as_deref(), Some("parallel for"));
        assert_eq!(user[1].line, 12);
    }

    #[test]
    fn slave_thread_stack_synthesizes_parent_chain() {
        let (t, _main, _fork, outlined) = demo_table();
        // Slave threads start directly at the outlined body.
        let _o = frame::enter(outlined);
        let user = reconstruct(&capture(), &t);
        assert_eq!(user.len(), 2);
        assert_eq!(user[0].name, "main");
        assert_eq!(user[0].construct, None);
        assert_eq!(user[1].construct.as_deref(), Some("parallel for"));
    }

    #[test]
    fn runtime_frames_never_appear() {
        let (t, main, fork, outlined) = demo_table();
        let barrier = t.register(SymbolDesc::runtime("__ompc_ibarrier"));
        let _m = frame::enter(main);
        let _f = frame::enter(fork);
        let _o = frame::enter(outlined);
        let _b = frame::enter(barrier);
        let user = reconstruct(&capture(), &t);
        assert!(user.iter().all(|f| !f.name.starts_with("__ompc")));
    }

    #[test]
    fn unresolvable_ips_are_dropped() {
        let (t, main, ..) = demo_table();
        let bt = crate::unwind::Backtrace::from_ips(vec![main.0, 0xdddd_dddd_dddd]);
        let user = reconstruct(&bt, &t);
        assert_eq!(user.len(), 1);
    }

    #[test]
    fn nested_user_calls_survive() {
        let t = SymbolTable::new();
        let main = t.register(SymbolDesc::user("main", "app.c", 1));
        let solver = t.register(SymbolDesc::user("solve", "solver.c", 40));
        let outlined = t.register(SymbolDesc::outlined(
            "__ompregion_solve_1",
            "solver.c",
            44,
            solver,
        ));
        let _m = frame::enter(main);
        let _s = frame::enter(solver);
        let _o = frame::enter(outlined);
        let user = reconstruct(&capture(), &t);
        let names: Vec<&str> = user.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["main", "solve", "solve"]);
        assert_eq!(user[2].construct.as_deref(), Some("parallel"));
    }

    #[test]
    fn call_tree_aggregates_weights() {
        let (t, main, _fork, outlined) = demo_table();
        let stack = {
            let _m = frame::enter(main);
            let _o = frame::enter(outlined);
            reconstruct(&capture(), &t)
        };
        let mut tree = CallTree::new();
        tree.add(&stack, 10.0);
        tree.add(&stack, 5.0);
        assert_eq!(tree.total(), 15.0);
        assert_eq!(tree.root_count(), 1);
        assert_eq!(tree.inclusive_of("main"), 15.0);
        let text = tree.render();
        assert!(text.contains("main"));
        assert!(text.contains("samples=2"));
    }

    #[test]
    fn folded_output_has_semicolon_stacks_and_weights() {
        let mut tree = CallTree::new();
        let root = UserFrame {
            name: "main".into(),
            file: "a.c".into(),
            line: 1,
            construct: None,
        };
        let leaf = UserFrame {
            name: "kernel".into(),
            file: "a.c".into(),
            line: 9,
            construct: Some("parallel".into()),
        };
        tree.add(&[root.clone(), leaf.clone()], 2e-3); // 2000 us at the leaf
        tree.add(std::slice::from_ref(&root), 1e-3); // 1000 us exclusive at main
        let folded = tree.folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "{folded}");
        assert!(lines[0].starts_with("main (a.c:1) 1000"), "{folded}");
        assert!(
            lines[1].contains("main (a.c:1);kernel [parallel@a.c:9] 2000"),
            "{folded}"
        );
    }

    #[test]
    fn folded_weights_sum_to_total() {
        let mut tree = CallTree::new();
        let a = UserFrame {
            name: "a".into(),
            file: "f".into(),
            line: 1,
            construct: None,
        };
        let b = UserFrame {
            name: "b".into(),
            file: "f".into(),
            line: 2,
            construct: None,
        };
        tree.add(&[a.clone(), b.clone()], 0.5);
        tree.add(std::slice::from_ref(&a), 0.25);
        tree.add(std::slice::from_ref(&b), 0.25);
        let total_micros: u64 = tree
            .folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total_micros, 1_000_000);
    }

    #[test]
    fn call_tree_renders_nesting_by_indentation() {
        let mut tree = CallTree::new();
        let root = UserFrame {
            name: "main".into(),
            file: "a.c".into(),
            line: 1,
            construct: None,
        };
        let leaf = UserFrame {
            name: "kernel".into(),
            file: "a.c".into(),
            line: 9,
            construct: Some("parallel".into()),
        };
        tree.add(&[root.clone(), leaf], 1.0);
        tree.add(&[root], 1.0);
        let text = tree.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("main"));
        assert!(lines[1].starts_with("  kernel"));
    }
}
