//! # psx — PerfSuite-style callstack support (the `libpsx` analogue)
//!
//! The paper extends PerfSuite with an auxiliary library, `libpsx`, that
//! gives ORA collectors two capabilities (paper §IV-F):
//!
//! * **call-stack retrieval** (via libunwind): instruction-pointer values
//!   for each stack frame at the point of inquiry — here, per-thread
//!   shadow stacks ([`frame`]) captured by [`unwind`];
//! * **IP → source mapping** (via GNU BFD): here, the synthetic
//!   [`symtab::SymbolTable`] with per-function IP ranges and line tables.
//!
//! On top of those, [`usermodel`] implements the offline reconstruction of
//! the *user-model* callstack — stripping runtime frames and re-attributing
//! compiler-outlined region bodies to the construct in their parent
//! function — and an aggregated [`usermodel::CallTree`] profile.
//!
//! [`dynsym`] provides the process-global symbol table through which a
//! runtime exports `__omp_collector_api` and a collector discovers it,
//! preserving the paper's "neither entity need know any details of the
//! other" property.

#![warn(missing_docs)]

pub mod dynsym;
pub mod frame;
pub mod symtab;
pub mod unwind;
pub mod usermodel;

pub use frame::{depth, enter, FrameGuard};
pub use symtab::{FrameKind, Ip, SymbolDesc, SymbolInfo, SymbolTable};
pub use unwind::{capture, capture_into, Backtrace};
pub use usermodel::{reconstruct, CallTree, UserFrame};
