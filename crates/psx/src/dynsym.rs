//! A process-global dynamic-symbol table.
//!
//! The real collector/runtime handshake goes through the dynamic linker:
//! the runtime library exports `__omp_collector_api`, and "the collector
//! may then query the dynamic linker to determine whether the symbol is
//! present" (paper §IV). We reproduce that decoupling with a global name →
//! entry-point table: the runtime exports a function value under the
//! canonical name, and a collector that knows only the name (and the
//! `ora-core` message format) can discover and drive it.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use ora_core::sync::Mutex;

/// The type of an exported collector entry point: the byte-protocol
/// function `int __omp_collector_api(void *arg)`.
pub type CollectorEntry = Arc<dyn Fn(&mut [u8]) -> i32 + Send + Sync>;

fn table() -> &'static Mutex<HashMap<String, CollectorEntry>> {
    static TABLE: OnceLock<Mutex<HashMap<String, CollectorEntry>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Export `entry` under `name`, replacing any previous export (like a
/// library being reloaded). Returns whether a previous export existed.
pub fn export(name: &str, entry: CollectorEntry) -> bool {
    table().lock().insert(name.to_string(), entry).is_some()
}

/// Export `entry` under `name` only if the name is free — the atomic
/// "first runtime in the process claims the canonical symbol" operation.
/// Returns whether the export was installed.
pub fn try_export(name: &str, entry: CollectorEntry) -> bool {
    let mut t = table().lock();
    if t.contains_key(name) {
        false
    } else {
        t.insert(name.to_string(), entry);
        true
    }
}

/// Look up an exported entry point — the `dlsym` analogue. Returns `None`
/// when no OpenMP runtime in the process exports the symbol, which is how
/// a collector detects it has nothing to attach to.
pub fn lookup(name: &str) -> Option<CollectorEntry> {
    table().lock().get(name).cloned()
}

/// Remove an export (library unloaded). Returns whether it existed.
pub fn unexport(name: &str) -> bool {
    table().lock().remove(name).is_some()
}

/// Whether `name` is currently exported.
pub fn is_exported(name: &str) -> bool {
    table().lock().contains_key(name)
}

/// Typed-object exports.
///
/// The C interface passes raw function pointers inside request payloads;
/// a Rust collector instead interns its closures with the runtime's
/// `CollectorApi` and sends the returned token over the wire. To keep the
/// collector decoupled from the runtime crate, the runtime exports its API
/// object here under `<symbol>.api`, and the collector downcasts it.
pub mod objects {
    use super::*;
    use std::any::Any;

    fn object_table() -> &'static Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>> {
        static TABLE: OnceLock<Mutex<HashMap<String, Arc<dyn Any + Send + Sync>>>> =
            OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// Export a shared object under `name`, replacing any previous export.
    pub fn export(name: &str, obj: Arc<dyn Any + Send + Sync>) -> bool {
        object_table()
            .lock()
            .insert(name.to_string(), obj)
            .is_some()
    }

    /// Look up and downcast an exported object.
    pub fn lookup<T: Any + Send + Sync>(name: &str) -> Option<Arc<T>> {
        object_table()
            .lock()
            .get(name)
            .cloned()
            .and_then(|obj| obj.downcast::<T>().ok())
    }

    /// Remove an export. Returns whether it existed.
    pub fn unexport(name: &str) -> bool {
        object_table().lock().remove(name).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_of_missing_symbol_is_none() {
        assert!(lookup("__no_such_symbol__").is_none());
        assert!(!is_exported("__no_such_symbol__"));
    }

    #[test]
    fn export_lookup_unexport_cycle() {
        let name = "__dynsym_test_cycle";
        assert!(!export(name, Arc::new(|_| 7)));
        let entry = lookup(name).expect("exported");
        let mut buf = [0u8; 4];
        assert_eq!(entry(&mut buf), 7);
        assert!(unexport(name));
        assert!(lookup(name).is_none());
        assert!(!unexport(name));
    }

    #[test]
    fn reexport_replaces_previous_entry() {
        let name = "__dynsym_test_replace";
        export(name, Arc::new(|_| 1));
        assert!(export(name, Arc::new(|_| 2)));
        let entry = lookup(name).unwrap();
        assert_eq!(entry(&mut []), 2);
        unexport(name);
    }

    #[test]
    fn object_exports_round_trip_with_downcast() {
        let name = "__dynsym_test_object";
        assert!(objects::lookup::<u64>(name).is_none());
        objects::export(name, Arc::new(42u64));
        assert_eq!(*objects::lookup::<u64>(name).unwrap(), 42);
        // Wrong type downcasts to None.
        assert!(objects::lookup::<String>(name).is_none());
        assert!(objects::unexport(name));
        assert!(objects::lookup::<u64>(name).is_none());
    }

    #[test]
    fn entries_are_callable_from_other_threads() {
        let name = "__dynsym_test_threads";
        export(name, Arc::new(|buf| buf.len() as i32));
        let handle = std::thread::spawn(move || {
            let entry = lookup(name).unwrap();
            entry(&mut [0u8; 16])
        });
        assert_eq!(handle.join().unwrap(), 16);
        unexport(name);
    }
}
