//! Per-thread implementation-model call stacks.
//!
//! Real libpsx unwinds the machine stack with libunwind. Our synthetic
//! programs instead *maintain* an explicit frame stack per thread: every
//! annotated function entry pushes its IP via an RAII [`FrameGuard`], and
//! capture ([`crate::unwind`]) copies the stack. This reproduces both the
//! information content (a vector of IPs, root first) and the cost shape
//! (capture cost linear in depth) of in-process unwinding.

use std::cell::RefCell;
use std::marker::PhantomData;

use crate::symtab::Ip;

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one stack frame. Created by [`enter`]; popping happens on
/// drop, so early returns and panics unwind the shadow stack correctly.
///
/// Not `Send`: a frame belongs to the thread that pushed it.
#[must_use = "dropping the guard pops the frame immediately"]
#[derive(Debug)]
pub struct FrameGuard {
    _not_send: PhantomData<*const ()>,
}

/// Push a frame for the function at `ip` onto the calling thread's stack.
#[inline]
pub fn enter(ip: Ip) -> FrameGuard {
    STACK.with(|s| s.borrow_mut().push(ip.0));
    FrameGuard {
        _not_send: PhantomData,
    }
}

impl Drop for FrameGuard {
    #[inline]
    fn drop(&mut self) {
        STACK.with(|s| {
            let popped = s.borrow_mut().pop();
            debug_assert!(popped.is_some(), "frame stack underflow");
        });
    }
}

/// Current depth of the calling thread's shadow stack.
pub fn depth() -> usize {
    STACK.with(|s| s.borrow().len())
}

/// Copy the calling thread's stack (root first) into `out`, reusing its
/// allocation. This is the capture primitive [`crate::unwind`] builds on.
#[inline]
pub fn snapshot_into(out: &mut Vec<u64>) {
    STACK.with(|s| {
        let stack = s.borrow();
        out.clear();
        out.extend_from_slice(&stack);
    });
}

/// The IP of the innermost frame, if any.
pub fn innermost() -> Option<Ip> {
    STACK.with(|s| s.borrow().last().copied().map(Ip))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_unwind() {
        assert_eq!(depth(), 0);
        {
            let _a = enter(Ip(0x1000));
            assert_eq!(depth(), 1);
            {
                let _b = enter(Ip(0x2000));
                assert_eq!(depth(), 2);
                assert_eq!(innermost(), Some(Ip(0x2000)));
            }
            assert_eq!(depth(), 1);
            assert_eq!(innermost(), Some(Ip(0x1000)));
        }
        assert_eq!(depth(), 0);
        assert_eq!(innermost(), None);
    }

    #[test]
    fn snapshot_copies_root_first() {
        let _a = enter(Ip(1));
        let _b = enter(Ip(2));
        let _c = enter(Ip(3));
        let mut out = Vec::new();
        snapshot_into(&mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn snapshot_reuses_allocation() {
        let _a = enter(Ip(1));
        let mut out = Vec::with_capacity(64);
        let cap = out.capacity();
        snapshot_into(&mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn stacks_are_thread_local() {
        let _a = enter(Ip(7));
        let other_depth = std::thread::spawn(depth).join().unwrap();
        assert_eq!(other_depth, 0);
        assert_eq!(depth(), 1);
    }

    #[test]
    fn guard_pops_on_panic() {
        let _outer = enter(Ip(1));
        let result = std::panic::catch_unwind(|| {
            let _inner = enter(Ip(2));
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(depth(), 1);
    }
}
