//! Callstack capture — the libunwind analogue.
//!
//! "New API entry points, callable by the collector, provide instruction
//! pointer values for each stack frame at the point of inquiry, allowing
//! reconstruction of the call graph." (paper §IV-F)

use crate::frame;
use crate::symtab::{Ip, SymbolInfo, SymbolTable};

/// A captured callstack: raw IPs, root frame first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Backtrace {
    ips: Vec<u64>,
}

impl Backtrace {
    /// An empty backtrace.
    pub fn new() -> Self {
        Backtrace::default()
    }

    /// Build from explicit IPs (root first) — used by tests and replay.
    pub fn from_ips(ips: Vec<u64>) -> Self {
        Backtrace { ips }
    }

    /// The frames, root first.
    pub fn frames(&self) -> impl Iterator<Item = Ip> + '_ {
        self.ips.iter().copied().map(Ip)
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.ips.len()
    }

    /// Whether no frames were captured.
    pub fn is_empty(&self) -> bool {
        self.ips.is_empty()
    }

    /// Resolve every frame against `table` (unresolvable IPs yield `None`).
    pub fn resolve<'a>(
        &'a self,
        table: &'a SymbolTable,
    ) -> impl Iterator<Item = Option<SymbolInfo>> + 'a {
        self.frames().map(move |ip| table.resolve(ip))
    }
}

/// Capture the calling thread's current implementation-model callstack.
#[inline]
pub fn capture() -> Backtrace {
    let mut bt = Backtrace::new();
    capture_into(&mut bt);
    bt
}

/// Capture into an existing backtrace, reusing its allocation — the form
/// collectors use from event callbacks to avoid per-event allocation.
#[inline]
pub fn capture_into(out: &mut Backtrace) {
    frame::snapshot_into(&mut out.ips);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symtab::SymbolDesc;

    #[test]
    fn capture_reflects_current_frames() {
        let t = SymbolTable::new();
        let main = t.register(SymbolDesc::user("main", "m.c", 1));
        let f = t.register(SymbolDesc::user("f", "m.c", 20));

        let _a = frame::enter(main);
        let _b = frame::enter(f);
        let bt = capture();
        assert_eq!(bt.len(), 2);
        let names: Vec<String> = bt
            .resolve(&t)
            .map(|s| s.unwrap().name.to_string())
            .collect();
        assert_eq!(names, vec!["main", "f"]);
    }

    #[test]
    fn capture_on_empty_stack_is_empty() {
        let bt = capture();
        assert!(bt.is_empty());
        assert_eq!(bt.len(), 0);
    }

    #[test]
    fn capture_into_reuses_buffer() {
        let _a = frame::enter(Ip(0x1000));
        let mut bt = Backtrace::from_ips(Vec::with_capacity(128));
        let cap = bt.ips.capacity();
        capture_into(&mut bt);
        assert_eq!(bt.len(), 1);
        assert_eq!(bt.ips.capacity(), cap);
    }

    #[test]
    fn unresolvable_frames_come_back_as_none() {
        let t = SymbolTable::new();
        let bt = Backtrace::from_ips(vec![0xdead_beef]);
        let resolved: Vec<_> = bt.resolve(&t).collect();
        assert_eq!(resolved, vec![None]);
    }
}
