//! Symbol table: mapping instruction pointers to source locations.
//!
//! The paper's `libpsx` uses the GNU BFD library to map instruction-pointer
//! values to source code locations. Our programs are not compiled C, so we
//! substitute a registry of *synthetic* IP ranges: each registered function
//! is assigned a range, call sites inside it map to offsets, and a small
//! line table resolves offsets to line numbers — the same query surface BFD
//! provides (`function`, `file`, `line` for an arbitrary IP).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use ora_core::sync::RwLock;

/// A synthetic instruction pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ip(pub u64);

impl Ip {
    /// The IP `offset` bytes into the function that starts at `self`.
    /// Used to model distinct call sites within one function.
    pub fn at_offset(self, offset: u64) -> Ip {
        Ip(self.0 + offset)
    }
}

/// What kind of code a symbol represents. Drives user-model reconstruction:
/// runtime frames are stripped; outlined frames are re-attributed to the
/// construct in their parent function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Ordinary user code.
    User,
    /// OpenMP runtime internals (`__ompc_*`); invisible in the user model.
    Runtime,
    /// A compiler-outlined parallel-region body (`__ompdo_*`); shown in the
    /// user model as its parent function plus the construct annotation.
    Outlined,
}

/// How a function was registered.
#[derive(Debug, Clone)]
pub struct SymbolDesc {
    /// Function name as it would appear in the binary.
    pub name: String,
    /// Source file.
    pub file: String,
    /// Line of the function definition (or of the construct for outlined
    /// bodies).
    pub line: u32,
    /// Frame classification.
    pub kind: FrameKind,
    /// For [`FrameKind::Outlined`]: the IP of the user function containing
    /// the parallel construct, so reconstruction can re-attach the frame.
    pub parent: Option<Ip>,
}

impl SymbolDesc {
    /// A user-code symbol.
    pub fn user(name: impl Into<String>, file: impl Into<String>, line: u32) -> Self {
        SymbolDesc {
            name: name.into(),
            file: file.into(),
            line,
            kind: FrameKind::User,
            parent: None,
        }
    }

    /// A runtime-internal symbol.
    pub fn runtime(name: impl Into<String>) -> Self {
        SymbolDesc {
            name: name.into(),
            file: "omprt".into(),
            line: 0,
            kind: FrameKind::Runtime,
            parent: None,
        }
    }

    /// An outlined parallel-region body nested in `parent`.
    pub fn outlined(
        name: impl Into<String>,
        file: impl Into<String>,
        line: u32,
        parent: Ip,
    ) -> Self {
        SymbolDesc {
            name: name.into(),
            file: file.into(),
            line,
            kind: FrameKind::Outlined,
            parent: Some(parent),
        }
    }
}

/// A resolved symbol: what `resolve` returns for an IP inside the range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolInfo {
    /// Base IP of the containing function.
    pub base: Ip,
    /// Function name.
    pub name: Arc<str>,
    /// Source file.
    pub file: Arc<str>,
    /// Resolved line for the queried IP (line table aware).
    pub line: u32,
    /// Frame classification.
    pub kind: FrameKind,
    /// Parent function for outlined bodies.
    pub parent: Option<Ip>,
}

struct Record {
    name: Arc<str>,
    file: Arc<str>,
    line: u32,
    kind: FrameKind,
    parent: Option<Ip>,
    size: u64,
    /// (offset, line) pairs, sorted by offset — a miniature DWARF line
    /// table for resolving call sites inside the function.
    line_table: Vec<(u64, u32)>,
}

/// Size of every synthetic function's IP range.
pub const FUNCTION_RANGE: u64 = 0x1000;

struct Inner {
    by_base: BTreeMap<u64, Record>,
    next_base: u64,
}

/// The symbol registry. Usually accessed through [`SymbolTable::global`],
/// mirroring a process's single symbol namespace, but independently
/// instantiable for tests.
pub struct SymbolTable {
    inner: RwLock<Inner>,
}

impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

impl SymbolTable {
    /// An empty table. IPs start above zero so `Ip(0)` is always invalid.
    pub fn new() -> Self {
        SymbolTable {
            inner: RwLock::new(Inner {
                by_base: BTreeMap::new(),
                next_base: FUNCTION_RANGE,
            }),
        }
    }

    /// The process-wide table (the analogue of the loaded binary's symbol
    /// and debug sections).
    pub fn global() -> &'static SymbolTable {
        static GLOBAL: OnceLock<SymbolTable> = OnceLock::new();
        GLOBAL.get_or_init(SymbolTable::new)
    }

    /// Register a function and allocate its IP range; returns the base IP.
    pub fn register(&self, desc: SymbolDesc) -> Ip {
        let mut inner = self.inner.write();
        let base = inner.next_base;
        inner.next_base += FUNCTION_RANGE;
        inner.by_base.insert(
            base,
            Record {
                name: desc.name.into(),
                file: desc.file.into(),
                line: desc.line,
                kind: desc.kind,
                parent: desc.parent,
                size: FUNCTION_RANGE,
                line_table: Vec::new(),
            },
        );
        Ip(base)
    }

    /// Add a line-table entry: IPs at or after `offset` (until the next
    /// entry) resolve to `line`.
    pub fn add_line(&self, base: Ip, offset: u64, line: u32) {
        let mut inner = self.inner.write();
        if let Some(rec) = inner.by_base.get_mut(&base.0) {
            let pos = rec
                .line_table
                .binary_search_by_key(&offset, |&(o, _)| o)
                .unwrap_or_else(|p| p);
            rec.line_table.insert(pos, (offset, line));
        }
    }

    /// Resolve an IP to its symbol, or `None` for unmapped addresses.
    pub fn resolve(&self, ip: Ip) -> Option<SymbolInfo> {
        let inner = self.inner.read();
        let (&base, rec) = inner.by_base.range(..=ip.0).next_back()?;
        let offset = ip.0 - base;
        if offset >= rec.size {
            return None;
        }
        let line = rec
            .line_table
            .iter()
            .take_while(|&&(o, _)| o <= offset)
            .last()
            .map(|&(_, l)| l)
            .unwrap_or(rec.line);
        Some(SymbolInfo {
            base: Ip(base),
            name: rec.name.clone(),
            file: rec.file.clone(),
            line,
            kind: rec.kind,
            parent: rec.parent,
        })
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.inner.read().by_base.len()
    }

    /// Whether the table has no symbols.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let t = SymbolTable::new();
        let main = t.register(SymbolDesc::user("main", "app.c", 10));
        let info = t.resolve(main).unwrap();
        assert_eq!(&*info.name, "main");
        assert_eq!(&*info.file, "app.c");
        assert_eq!(info.line, 10);
        assert_eq!(info.kind, FrameKind::User);
        assert_eq!(info.base, main);
    }

    #[test]
    fn offsets_stay_within_function() {
        let t = SymbolTable::new();
        let f = t.register(SymbolDesc::user("f", "a.c", 1));
        let g = t.register(SymbolDesc::user("g", "a.c", 50));
        assert_eq!(
            &*t.resolve(f.at_offset(FUNCTION_RANGE - 1)).unwrap().name,
            "f"
        );
        assert_eq!(&*t.resolve(g).unwrap().name, "g");
        // g starts exactly where f's range ends.
        assert_eq!(g.0, f.0 + FUNCTION_RANGE);
    }

    #[test]
    fn unmapped_ips_resolve_to_none() {
        let t = SymbolTable::new();
        assert_eq!(t.resolve(Ip(0)), None);
        assert_eq!(t.resolve(Ip(5)), None);
        let f = t.register(SymbolDesc::user("f", "a.c", 1));
        assert_eq!(t.resolve(Ip(f.0 + FUNCTION_RANGE)), None);
    }

    #[test]
    fn line_table_resolves_call_sites() {
        let t = SymbolTable::new();
        let f = t.register(SymbolDesc::user("f", "a.c", 100));
        t.add_line(f, 0x10, 103);
        t.add_line(f, 0x20, 107);
        assert_eq!(t.resolve(f).unwrap().line, 100); // before first entry
        assert_eq!(t.resolve(f.at_offset(0x10)).unwrap().line, 103);
        assert_eq!(t.resolve(f.at_offset(0x1f)).unwrap().line, 103);
        assert_eq!(t.resolve(f.at_offset(0x20)).unwrap().line, 107);
        assert_eq!(t.resolve(f.at_offset(0xfff)).unwrap().line, 107);
    }

    #[test]
    fn outlined_symbols_remember_their_parent() {
        let t = SymbolTable::new();
        let main = t.register(SymbolDesc::user("main", "app.c", 5));
        let outlined = t.register(SymbolDesc::outlined("__ompdo_main_1", "app.c", 12, main));
        let info = t.resolve(outlined).unwrap();
        assert_eq!(info.kind, FrameKind::Outlined);
        assert_eq!(info.parent, Some(main));
    }

    #[test]
    fn runtime_symbols_are_marked() {
        let t = SymbolTable::new();
        let f = t.register(SymbolDesc::runtime("__ompc_fork"));
        assert_eq!(t.resolve(f).unwrap().kind, FrameKind::Runtime);
    }

    #[test]
    fn global_table_is_a_singleton() {
        let a = SymbolTable::global() as *const _;
        let b = SymbolTable::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_registration_allocates_disjoint_ranges() {
        let t = std::sync::Arc::new(SymbolTable::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| t.register(SymbolDesc::user(format!("f{i}_{j}"), "x.c", 1)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut bases: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .map(|ip| ip.0)
            .collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 800);
    }
}
