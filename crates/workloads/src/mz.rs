//! Synthetic NPB3.2-MZ-MPI hybrids (BT-MZ, LU-MZ, SP-MZ).
//!
//! The multi-zone benchmarks decompose the mesh into zones distributed
//! over MPI processes; within each process, OpenMP parallelizes each
//! zone's solve. We substitute MPI with `ProcSim`: each rank is an OS
//! thread owning its *own* OpenMP runtime instance, with boundary exchange
//! over channels. Zone-steps are distributed over ranks as evenly as
//! possible, so the per-process parallel-region call counts reproduce the
//! paper's Table II exactly, including its halving pattern:
//!
//! | Benchmark | 1×8     | 2×4     | 4×2     | 8×1    |
//! |-----------|---------|---------|---------|--------|
//! | BT-MZ     | 167 616 | 83 808  | 41 904  | 20 952 |
//! | LU-MZ     | 40 353  | 20 177  | 10 089  | 5 045  |
//! | SP-MZ     | 436 672 | 218 336 | 109 168 | 54 584 |
//!
//! (LU-MZ's totals are not divisible by the process counts; the table's
//! values are the *maximum* per rank, i.e. ceiling division — which an
//! even zone-step distribution produces naturally.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use collector::{clock, Profiler, RuntimeHandle};
use omprt::{OpenMp, ParCtx, RegionHandle, SourceFunction};

use crate::npb::NpbClass;
use crate::util::SharedVec;

/// A multi-zone benchmark definition.
#[derive(Debug, Clone)]
pub struct MzBenchmark {
    /// Benchmark name as in Table II.
    pub name: &'static str,
    /// Total parallel-region calls across all ranks at class B-sim (the
    /// 1-process column of Table II).
    pub total_calls_b: u64,
    /// Zones in the decomposition.
    pub zones: usize,
    region: RegionHandle,
    /// When true, each zone step drains a master-spawned tied-task
    /// flood instead of a worksharing loop — a deliberately detrimental
    /// shape (serialized spawn + starved teammates) for exercising
    /// `trace analyze` end-to-end on fleet traces.
    serialized_tasks: bool,
}

/// Whether ranks attach collectors during the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectMode {
    /// No collection — the baseline.
    Off,
    /// Each rank attaches the full profiler to its own runtime.
    Profile,
    /// Each rank attaches callbacks that record nothing (the §V-B
    /// communication-only component).
    CallbacksOnly,
}

/// Result of a single rank's standalone zone-step run.
#[derive(Debug, Clone, Copy)]
pub struct MzRankResult {
    /// Zone-step region calls this rank executed.
    pub calls: u64,
    /// Serial sum of the rank's solution array (dead-code guard).
    pub checksum: f64,
}

/// Result of one multi-zone run.
#[derive(Debug)]
pub struct MzRunResult {
    /// Wall-clock seconds for the whole P×T run.
    pub wall_secs: f64,
    /// Region calls each rank made (decreasing by at most 1 across ranks).
    pub per_rank_calls: Vec<u64>,
    /// Total join samples collected (0 when collection is off).
    pub join_samples: u64,
    /// Sum of all ranks' boundary-exchange token (guards against dead
    /// code elimination and checks the ring actually circulated).
    pub exchange_checksum: f64,
}

fn mz_region(name: &str) -> RegionHandle {
    let func = SourceFunction::new(format!("{}_zone_solver", name), "mz.rs", 1);
    func.region("zone_step", 20)
}

/// Tied tasks the master floods per serialized zone step. Comfortably
/// above `AnalyzeConfig::min_tasks` (16) so the planted pattern clears
/// the analyzer's evidence floor.
const SERIALIZED_SPAWNS: usize = 24;

/// One zone step's worth of relaxation on `u`, in one of two shapes:
/// the honest worksharing loop, or the planted detrimental one where
/// the master serializes everything through tied tasks while the rest
/// of the team waits (spawns happen before the barrier, so teammates'
/// `taskwait` windows span the whole flood).
fn zone_step(ctx: &ParCtx<'_>, u: &SharedVec, hi: i64, boundary: f64, serialized: bool) {
    if serialized {
        if ctx.thread_num() == 0 {
            for t in 0..SERIALIZED_SPAWNS {
                let i = t % (hi as usize + 1);
                // SAFETY: tied tasks drain inside this region (at the
                // taskwait below), while `u` and `boundary` are live;
                // each task touches its own index, so the writes race
                // with nothing.
                unsafe {
                    ctx.task_borrowed(move || {
                        u.set(i, 0.75 * u.get(i) + 0.25 * (i as f64 * 1e-3 + boundary));
                    });
                }
            }
        }
        ctx.barrier();
        ctx.taskwait();
    } else {
        ctx.for_each(0, hi, |i| unsafe {
            let i = i as usize;
            u.set(i, 0.75 * u.get(i) + 0.25 * (i as f64 * 1e-3 + boundary));
        });
    }
}

impl MzBenchmark {
    /// BT-MZ: 167 616 total zone-step region calls, 64 zones.
    pub fn bt_mz() -> MzBenchmark {
        MzBenchmark {
            name: "BT-MZ",
            total_calls_b: 167_616,
            zones: 64,
            region: mz_region("bt_mz"),
            serialized_tasks: false,
        }
    }

    /// LU-MZ: 40 353 total zone-step region calls, 16 zones.
    pub fn lu_mz() -> MzBenchmark {
        MzBenchmark {
            name: "LU-MZ",
            total_calls_b: 40_353,
            zones: 16,
            region: mz_region("lu_mz"),
            serialized_tasks: false,
        }
    }

    /// SP-MZ: 436 672 total zone-step region calls, 64 zones.
    pub fn sp_mz() -> MzBenchmark {
        MzBenchmark {
            name: "SP-MZ",
            total_calls_b: 436_672,
            zones: 64,
            region: mz_region("sp_mz"),
            serialized_tasks: false,
        }
    }

    /// TASKS-MZ: a deliberately detrimental variant where the master
    /// serializes every zone step through a tied-task flood while the
    /// rest of the team sits in taskwait. Not part of Table II — it
    /// exists so `fleet` runs produce traces in which `trace analyze`
    /// must flag serialized-spawn and starvation patterns.
    pub fn tasks_mz() -> MzBenchmark {
        MzBenchmark {
            name: "TASKS-MZ",
            total_calls_b: 4_000,
            zones: 16,
            region: mz_region("tasks_mz"),
            serialized_tasks: true,
        }
    }

    /// The three hybrids, in Table II order.
    pub fn all() -> Vec<MzBenchmark> {
        vec![Self::bt_mz(), Self::lu_mz(), Self::sp_mz()]
    }

    /// Zone-step calls per rank at `class`: even distribution with the
    /// remainder going to the lowest ranks.
    pub fn per_rank_calls(&self, procs: usize, class: NpbClass) -> Vec<u64> {
        let total = match class {
            NpbClass::Bsim => self.total_calls_b,
            NpbClass::W => self.total_calls_b / 20,
            NpbClass::S => self.total_calls_b / 200,
        };
        let procs = procs.max(1) as u64;
        let base = total / procs;
        let extra = total % procs;
        (0..procs).map(|r| base + u64::from(r < extra)).collect()
    }

    /// The Table II entry for `procs` processes: the maximum per-rank call
    /// count at class B-sim.
    pub fn table2_calls(&self, procs: usize) -> u64 {
        *self
            .per_rank_calls(procs, NpbClass::Bsim)
            .iter()
            .max()
            .unwrap()
    }

    /// Run exactly one rank's share of the zone-step calls on `rt`,
    /// standalone — no boundary-exchange ring. This is the per-process
    /// entry point for multi-process (fleet) runs, where each rank is a
    /// separate OS process and its caller owns the runtime so a
    /// collector can be attached before the solve starts. The boundary
    /// term stays fixed at the rank index; region-call counts still
    /// reproduce Table II's per-rank column exactly.
    pub fn run_rank(
        &self,
        rt: &OpenMp,
        rank: usize,
        procs: usize,
        class: NpbClass,
    ) -> MzRankResult {
        let rank_calls = self
            .per_rank_calls(procs, class)
            .get(rank)
            .copied()
            .unwrap_or(0);
        let n = class.array_len().max(32);
        let u = SharedVec::zeros(n);
        let hi = n as i64 - 1;
        let boundary = rank as f64;
        for _ in 0..rank_calls {
            rt.parallel_region(&self.region, |ctx| {
                zone_step(ctx, &u, hi, boundary, self.serialized_tasks);
            });
        }
        MzRankResult {
            calls: rank_calls,
            checksum: u.sum(),
        }
    }

    /// Run the benchmark with `procs` simulated ranks × `threads` OpenMP
    /// threads each.
    pub fn run(
        &self,
        procs: usize,
        threads: usize,
        class: NpbClass,
        collect: CollectMode,
    ) -> MzRunResult {
        let calls = self.per_rank_calls(procs, class);
        // Zone solves carry enough work per region call that collection
        // overhead lands in the paper's range rather than being dominated
        // by fork/join cost.
        let n = class.array_len();
        // Boundary-exchange rounds must be IDENTICAL across ranks or the
        // ring deadlocks: with uneven per-rank call counts, deriving the
        // exchange cadence from each rank's own count can give one rank an
        // extra round whose recv() never completes. Fix the round count
        // globally and let each rank space its rounds over its own calls.
        let min_calls = calls.iter().copied().min().unwrap_or(0);
        let rounds = (self.zones as u64).min(min_calls);

        // Boundary-exchange ring: rank r sends to (r+1) % P.
        let mut senders = Vec::with_capacity(procs);
        let mut receivers = Vec::with_capacity(procs);
        for _ in 0..procs {
            let (tx, rx) = std::sync::mpsc::channel::<f64>();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let join_samples = Arc::new(AtomicU64::new(0));
        let exchange = Arc::new(AtomicU64::new(0f64.to_bits()));
        let region = self.region.clone();
        let serialized = self.serialized_tasks;

        let (_, wall_ticks) = clock::time(|| {
            std::thread::scope(|scope| {
                for (rank, &rank_calls) in calls.iter().enumerate() {
                    let to_next = senders[(rank + 1) % procs].clone();
                    let from_prev = receivers[rank].take().expect("rx taken once");
                    let join_samples = join_samples.clone();
                    let exchange = exchange.clone();
                    let region = region.clone();
                    scope.spawn(move || {
                        let rt = OpenMp::with_threads(threads);
                        let profiler = match collect {
                            CollectMode::Off => None,
                            CollectMode::Profile => {
                                let h = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
                                Some(Profiler::attach_default(h).unwrap())
                            }
                            CollectMode::CallbacksOnly => {
                                let h = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
                                Some(
                                    Profiler::attach(
                                        h,
                                        collector::ProfilerConfig {
                                            mode: collector::Mode::CallbacksOnly,
                                            ..Default::default()
                                        },
                                    )
                                    .unwrap(),
                                )
                            }
                        };

                        let u = SharedVec::zeros(n.max(32));
                        let hi = n.max(32) as i64 - 1;
                        let mut boundary = rank as f64;
                        let mut done_rounds = 0u64;

                        for call in 0..rank_calls {
                            rt.parallel_region(&region, |ctx| {
                                zone_step(ctx, &u, hi, boundary, serialized);
                            });
                            // MPI_Sendrecv stand-in around the ring: every
                            // rank performs exactly `rounds` exchanges,
                            // spaced evenly over its own call count, so the
                            // ring cannot deadlock on uneven splits.
                            while procs > 1
                                && done_rounds < rounds
                                && (call + 1) * rounds >= (done_rounds + 1) * rank_calls
                            {
                                let _ = to_next.send(boundary + 1.0);
                                if let Ok(v) = from_prev.recv() {
                                    boundary = 0.5 * (boundary + v);
                                }
                                done_rounds += 1;
                            }
                        }
                        // A rank with zero calls still owes its rounds.
                        while procs > 1 && done_rounds < rounds {
                            let _ = to_next.send(boundary + 1.0);
                            if let Ok(v) = from_prev.recv() {
                                boundary = 0.5 * (boundary + v);
                            }
                            done_rounds += 1;
                        }
                        // Drain stragglers (unbounded channels never block,
                        // but be tidy).
                        while from_prev.try_recv().is_ok() {}

                        let cur = f64::from_bits(exchange.load(Ordering::Relaxed));
                        exchange.store((cur + boundary).to_bits(), Ordering::Relaxed);
                        if let Some(p) = profiler {
                            let profile = p.finish();
                            join_samples.fetch_add(profile.join_samples, Ordering::Relaxed);
                        }
                    });
                }
            });
        });

        MzRunResult {
            wall_secs: clock::to_secs(wall_ticks),
            per_rank_calls: calls,
            join_samples: join_samples.load(Ordering::Relaxed),
            exchange_checksum: f64::from_bits(exchange.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table II of the paper (per-process region calls, process × thread).
    const TABLE_II: [(&str, [u64; 4]); 3] = [
        ("BT-MZ", [167_616, 83_808, 41_904, 20_952]),
        ("LU-MZ", [40_353, 20_177, 10_089, 5_045]),
        ("SP-MZ", [436_672, 218_336, 109_168, 54_584]),
    ];

    #[test]
    fn per_rank_calls_reproduce_table_2_exactly() {
        for (bench, &(name, cols)) in MzBenchmark::all().iter().zip(TABLE_II.iter()) {
            assert_eq!(bench.name, name);
            for (procs, expected) in [1usize, 2, 4, 8].into_iter().zip(cols) {
                assert_eq!(
                    bench.table2_calls(procs),
                    expected,
                    "{name} at {procs} procs"
                );
            }
        }
    }

    #[test]
    fn per_rank_distribution_is_balanced_and_complete() {
        let lu = MzBenchmark::lu_mz();
        for procs in [1, 2, 3, 4, 8] {
            let calls = lu.per_rank_calls(procs, NpbClass::Bsim);
            assert_eq!(calls.len(), procs);
            assert_eq!(calls.iter().sum::<u64>(), lu.total_calls_b);
            let max = calls.iter().max().unwrap();
            let min = calls.iter().min().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn mz_run_executes_all_rank_calls() {
        let bench = MzBenchmark::lu_mz();
        let result = bench.run(2, 2, NpbClass::S, CollectMode::Off);
        assert_eq!(result.per_rank_calls.len(), 2);
        assert_eq!(
            result.per_rank_calls.iter().sum::<u64>(),
            bench.total_calls_b / 200
        );
        assert!(result.wall_secs > 0.0);
        assert_eq!(result.join_samples, 0);
        assert!(result.exchange_checksum.is_finite());
    }

    #[test]
    fn mz_run_with_profiling_collects_per_rank() {
        let bench = MzBenchmark::lu_mz();
        let result = bench.run(2, 2, NpbClass::S, CollectMode::Profile);
        let total: u64 = result.per_rank_calls.iter().sum();
        assert_eq!(result.join_samples, total, "one join sample per region");
    }

    #[test]
    fn uneven_rank_splits_do_not_deadlock_the_exchange_ring() {
        // Regression: SP-MZ at 8 procs splits 21833 calls as [2730, 2729×7]
        // (W class); deriving exchange cadence per-rank gave rank 0 one
        // more recv() than its peers ever send — a guaranteed hang.
        let bench = MzBenchmark::sp_mz();
        let calls = bench.per_rank_calls(8, NpbClass::W);
        assert!(calls.iter().any(|&c| c != calls[0]), "needs uneven split");
        let result = bench.run(8, 1, NpbClass::W, CollectMode::Off);
        assert_eq!(result.per_rank_calls.iter().sum::<u64>(), 21_833);
        assert!(result.exchange_checksum.is_finite());
    }

    #[test]
    fn run_rank_executes_exactly_its_table_share() {
        let bench = MzBenchmark::lu_mz();
        let expected = bench.per_rank_calls(4, NpbClass::S);
        let mut total = 0;
        for (rank, &want) in expected.iter().enumerate() {
            let rt = OpenMp::with_threads(2);
            let result = bench.run_rank(&rt, rank, 4, NpbClass::S);
            assert_eq!(result.calls, want);
            assert!(result.checksum.is_finite());
            total += result.calls;
        }
        assert_eq!(total, bench.total_calls_b / 200);
        // An out-of-range rank does no work rather than panicking.
        let rt = OpenMp::with_threads(1);
        assert_eq!(bench.run_rank(&rt, 9, 4, NpbClass::S).calls, 0);
    }

    #[test]
    fn tasks_mz_serialized_steps_complete_via_the_task_path() {
        let bench = MzBenchmark::tasks_mz();
        assert!(bench.serialized_tasks);
        let rt = OpenMp::with_threads(4);
        let result = bench.run_rank(&rt, 0, 1, NpbClass::S);
        assert_eq!(result.calls, bench.total_calls_b / 200);
        assert!(result.checksum.is_finite());
        assert!(result.checksum > 0.0, "tied-task flood must touch u");
        // Every task is tied to the master, so nothing is stealable.
        assert_eq!(rt.health().tasks_stolen, 0);
    }

    #[test]
    fn callbacks_only_mode_collects_no_samples() {
        let bench = MzBenchmark::lu_mz();
        let result = bench.run(2, 1, NpbClass::S, CollectMode::CallbacksOnly);
        assert_eq!(result.join_samples, 0);
    }
}
