//! Shared-array plumbing for the synthetic kernels.

use std::cell::UnsafeCell;

/// A fixed-length `f64` array writable concurrently at *disjoint* indices.
///
/// The worksharing schedules partition iteration spaces exactly (each
/// index claimed by one thread — property-tested in `omprt::schedule`), so
/// kernels can update `u[i]` from the thread that owns `i` without
/// synchronization, like the plain C arrays of the original benchmarks.
/// Elements are individual `UnsafeCell`s, so no whole-slice reference is
/// ever formed across threads.
///
/// # Safety contract
/// Callers must only write an index from the thread that owns it in the
/// current worksharing construct, and must separate writer/reader phases
/// with a barrier (the runtime's implicit region-end barrier suffices).
pub struct SharedVec {
    data: Box<[UnsafeCell<f64>]>,
}

unsafe impl Sync for SharedVec {}

impl SharedVec {
    /// A zero-filled array of length `n` (at least 1).
    pub fn zeros(n: usize) -> Self {
        SharedVec {
            data: (0..n.max(1)).map(|_| UnsafeCell::new(0.0)).collect(),
        }
    }

    /// Length of the array.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty (never true; length is clamped to 1).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn cell(&self, i: usize) -> &UnsafeCell<f64> {
        // The kernels index with modular arithmetic; the clamp is a belt
        // and braces guard, not an API.
        &self.data[i.min(self.data.len() - 1)]
    }

    /// Read element `i`.
    ///
    /// # Safety
    /// No concurrent writer to `i` (see the type-level contract).
    #[inline]
    pub unsafe fn get(&self, i: usize) -> f64 {
        unsafe { *self.cell(i).get() }
    }

    /// Write element `i`.
    ///
    /// # Safety
    /// The calling thread owns `i` in the current worksharing construct.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: f64) {
        unsafe { *self.cell(i).get() = v }
    }

    /// Serial sum (call only between parallel phases).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|c| unsafe { *c.get() }).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = SharedVec::zeros(8);
        assert_eq!(v.len(), 8);
        assert!(!v.is_empty());
        assert_eq!(v.sum(), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let v = SharedVec::zeros(4);
        unsafe {
            v.set(0, 1.5);
            v.set(3, 2.5);
            assert_eq!(v.get(0), 1.5);
            assert_eq!(v.get(3), 2.5);
        }
        assert_eq!(v.sum(), 4.0);
    }

    #[test]
    fn out_of_range_indices_clamp() {
        let v = SharedVec::zeros(4);
        unsafe {
            v.set(100, 9.0);
            assert_eq!(v.get(100), 9.0);
            assert_eq!(v.get(3), 9.0);
        }
    }

    #[test]
    fn disjoint_parallel_writes_are_all_visible() {
        use omprt::OpenMp;
        let rt = OpenMp::with_threads(4);
        let v = SharedVec::zeros(1000);
        rt.parallel(|ctx| {
            ctx.for_each(0, 999, |i| unsafe {
                v.set(i as usize, 1.0);
            });
        });
        assert_eq!(v.sum(), 1000.0);
    }
}
