//! Deterministic, repetition-shaped workload units for `ora-meter`.
//!
//! The overhead meter (in `crates/bench`) needs two things from a
//! workload that the figure harnesses never did:
//!
//! 1. **An iteration hook** — a call that performs *exactly one*
//!    repetition of work, so the meter can time repetitions individually
//!    and build per-repetition statistics (median, MAD, bootstrap CI)
//!    instead of one best-of number.
//! 2. **Deterministic work sizing** — a repetition must perform the same
//!    work every time and across processes, so `BENCH_*.json` files from
//!    different runs of the same scale are comparable and a committed
//!    baseline stays meaningful.
//!
//! [`MeterWorkload`] packages both: construction fixes the sizing
//! (per [`MeterScale`]) and [`MeterWorkload::run_rep`] is the hook.
//! Only deterministic NPB kernels are included ([`crate::npb::NpbKernel::is_deterministic`]);
//! LU-HP's partition-dependent wavefronts would make the checksum — and
//! worse, the work distribution — depend on scheduling.

use omprt::{BarrierKind, Config, OpenMp, Schedule};

use crate::epcc::{self, Directive, EpccConfig};
use crate::npb::{NpbClass, NpbKernel};

/// Work sizing for meter runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterScale {
    /// Seconds-long total: CI smoke runs and PR gating.
    Quick,
    /// Minutes-long total: refreshing committed baselines.
    Full,
}

impl MeterScale {
    /// Stable key recorded in the `BENCH_*.json` schema.
    pub const fn key(self) -> &'static str {
        match self {
            MeterScale::Quick => "quick",
            MeterScale::Full => "full",
        }
    }

    /// Parse a [`key`](Self::key) back.
    pub fn from_key(key: &str) -> Option<MeterScale> {
        match key {
            "quick" => Some(MeterScale::Quick),
            "full" => Some(MeterScale::Full),
            _ => None,
        }
    }
}

/// Which benchmark family a workload belongs to (one `BENCH_<suite>.json`
/// file per suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterSuite {
    /// EPCC syncbench directives.
    Epcc,
    /// Synthetic NPB kernels.
    Npb,
    /// Synchronization-core microbenchmarks: fork/join latency and
    /// barrier episode latency, the hot paths the runtime's parking and
    /// padding work targets.
    Sync,
    /// Dispatch-path microbenchmarks: event-dense synchronization storms
    /// sized to maximize monitored-dispatch frequency, so the ladder's
    /// per-rung slowdown isolates the cost of event dispatch itself —
    /// and the governed rung's adherence to its overhead budget.
    Dispatch,
    /// Explicit-task microbenchmarks: spawn/execute throughput of the
    /// team task pool, both the every-thread-spawns shape (contention on
    /// the submission path) and the single-producer shape (distribution
    /// of work to otherwise-idle threads).
    Tasks,
    /// Topology-aware scheduling microbenchmarks: pooled vs ephemeral
    /// nested fork (the sub-team leasing ablation) and the
    /// topology-shaped combining-tree barrier vs the flat fan-in-4 tree
    /// under heavy oversubscription. Run with `OMP_ORA_TOPOLOGY`
    /// injected so the shaped tree is identical on every host.
    Topo,
}

impl MeterSuite {
    /// Stable key (`epcc` / `npb` / `sync` / `dispatch` / `tasks` /
    /// `topo`), also the `BENCH_<key>.json` stem.
    pub const fn key(self) -> &'static str {
        match self {
            MeterSuite::Epcc => "epcc",
            MeterSuite::Npb => "npb",
            MeterSuite::Sync => "sync",
            MeterSuite::Dispatch => "dispatch",
            MeterSuite::Tasks => "tasks",
            MeterSuite::Topo => "topo",
        }
    }

    /// Parse a [`key`](Self::key) back.
    pub fn from_key(key: &str) -> Option<MeterSuite> {
        match key {
            "epcc" => Some(MeterSuite::Epcc),
            "npb" => Some(MeterSuite::Npb),
            "sync" => Some(MeterSuite::Sync),
            "dispatch" => Some(MeterSuite::Dispatch),
            "tasks" => Some(MeterSuite::Tasks),
            "topo" => Some(MeterSuite::Topo),
            _ => None,
        }
    }
}

/// Which synchronization hot path a [`MeterSuite::Sync`] workload times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncKind {
    /// Empty parallel regions: publish → wake team → run nothing → join
    /// barrier. Isolates fork/join latency.
    ForkJoin,
    /// One region running a storm of explicit barriers: isolates barrier
    /// episode latency under full team contention.
    BarrierStorm,
}

/// Which task-pool hot path a [`MeterSuite::Tasks`] workload times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskShape {
    /// Every thread spawns its own batch of tasks each episode, then
    /// taskwaits. Maximizes submission-path contention: a single shared
    /// queue serializes every spawn, per-thread deques do not.
    SpawnFlood,
    /// Only the master spawns; a barrier makes the batch visible before
    /// the whole team taskwaits and drains it. Measures distribution of
    /// one producer's work across otherwise-idle consumers.
    ProducerSteal,
}

enum WorkUnit {
    Epcc {
        directive: Directive,
        cfg: EpccConfig,
    },
    Npb {
        kernel: NpbKernel,
        class: NpbClass,
        // Kernel invocations per repetition: a single small-class pass is
        // sub-millisecond, too little signal for between-run stability.
        passes: usize,
    },
    Sync {
        kind: SyncKind,
        // Directive instances (regions or barrier episodes) per
        // repetition; sized so one repetition is comfortably above timer
        // resolution.
        inner: usize,
    },
    Tasks {
        shape: TaskShape,
        // Tasks per spawner per episode.
        tasks: usize,
        // Spawn/taskwait episodes per repetition.
        episodes: usize,
    },
    NestedFork {
        // Sub-team width of each nested fork.
        width: usize,
        // Nested forks (by the outer master) per repetition.
        forks: usize,
    },
    DynamicClaim {
        // Loop trip count per episode.
        iters: i64,
        // Dynamic-schedule chunk size (small, so claims dominate).
        chunk: usize,
        // Loop episodes per repetition.
        episodes: usize,
    },
}

/// Cheap deterministic per-task payload: enough arithmetic that the task
/// body cannot be elided, little enough that spawn/dispatch dominates.
#[inline]
fn task_mix(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)
}

/// One deterministic workload unit exposed to the meter.
pub struct MeterWorkload {
    name: String,
    suite: MeterSuite,
    unit: WorkUnit,
    /// Runtime configuration this workload must run under; `None` means
    /// the runner's default (its `threads` setting, default everything
    /// else). The topo and sync suites pin team sizes, barrier
    /// algorithms, and nesting modes per workload, so a single runner
    /// invocation can compare them like-for-like.
    config: Option<Config>,
}

impl MeterWorkload {
    /// Workload name as recorded in the schema (e.g. `parallel`, `cg`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The suite this workload reports under.
    pub fn suite(&self) -> MeterSuite {
        self.suite
    }

    /// The runtime configuration override, if this workload pins one.
    pub fn runtime_config(&self) -> Option<&Config> {
        self.config.as_ref()
    }

    /// Directive instances (EPCC) or parallel-region calls (NPB) one
    /// repetition performs — the denominator for per-unit costs, and a
    /// self-check that two runs really did the same work.
    pub fn work_units(&self) -> u64 {
        match &self.unit {
            WorkUnit::Epcc { cfg, .. } => cfg.inner_reps as u64,
            WorkUnit::Npb {
                kernel,
                class,
                passes,
            } => kernel.region_calls(*class) * *passes as u64,
            WorkUnit::Sync { inner, .. } => *inner as u64,
            WorkUnit::Tasks {
                tasks, episodes, ..
            } => (*tasks * *episodes) as u64,
            WorkUnit::NestedFork { forks, .. } => *forks as u64,
            WorkUnit::DynamicClaim { episodes, .. } => *episodes as u64,
        }
    }

    /// The iteration hook: perform exactly one repetition on `rt`.
    /// Returns a checksum so the optimizer cannot elide the work (0.0 for
    /// EPCC, whose delay loops are `black_box`ed internally).
    pub fn run_rep(&self, rt: &OpenMp) -> f64 {
        match &self.unit {
            WorkUnit::Epcc { directive, cfg } => {
                epcc::iterate(rt, *directive, cfg);
                0.0
            }
            WorkUnit::Npb {
                kernel,
                class,
                passes,
            } => (0..*passes)
                .map(|_| kernel.run(rt, *class))
                .last()
                .unwrap_or(0.0),
            WorkUnit::Sync { kind, inner } => {
                match kind {
                    SyncKind::ForkJoin => {
                        for _ in 0..*inner {
                            rt.parallel(|_| {});
                        }
                    }
                    SyncKind::BarrierStorm => {
                        let episodes = *inner;
                        rt.parallel(|ctx| {
                            for _ in 0..episodes {
                                ctx.barrier();
                            }
                        });
                    }
                }
                0.0
            }
            WorkUnit::Tasks {
                shape,
                tasks,
                episodes,
            } => {
                use std::sync::atomic::{AtomicU64, Ordering};
                let sum = AtomicU64::new(0);
                let (shape, tasks, episodes) = (*shape, *tasks, *episodes);
                rt.parallel(|ctx| {
                    for ep in 0..episodes {
                        let spawner = match shape {
                            TaskShape::SpawnFlood => true,
                            TaskShape::ProducerSteal => ctx.is_master(),
                        };
                        if spawner {
                            for i in 0..tasks {
                                let v = ((ep as u64) << 32) | i as u64;
                                let sum = &sum;
                                // SAFETY: `sum` outlives the region; the
                                // episode taskwait below (and the region-end
                                // drain) retire every task before it drops.
                                // Spawn-flood keeps tasks tied (pure
                                // own-deque push/pop throughput); the
                                // producer shape needs untied tasks so the
                                // team can actually steal from the master.
                                unsafe {
                                    match shape {
                                        TaskShape::SpawnFlood => {
                                            ctx.task_borrowed(move || {
                                                sum.fetch_add(task_mix(v), Ordering::Relaxed);
                                            });
                                        }
                                        TaskShape::ProducerSteal => {
                                            ctx.task_borrowed_untied(move || {
                                                sum.fetch_add(task_mix(v), Ordering::Relaxed);
                                            });
                                        }
                                    }
                                }
                            }
                        }
                        if shape == TaskShape::ProducerSteal {
                            // Make the batch visible to the whole team
                            // before anyone decides the pool is quiescent.
                            ctx.barrier();
                        }
                        ctx.taskwait();
                    }
                });
                sum.load(Ordering::Relaxed) as f64
            }
            WorkUnit::NestedFork { width, forks } => {
                let (width, forks) = (*width, *forks);
                rt.parallel(|ctx| {
                    if ctx.is_master() {
                        for _ in 0..forks {
                            rt.parallel_n(width, |_| {});
                        }
                    }
                });
                0.0
            }
            WorkUnit::DynamicClaim {
                iters,
                chunk,
                episodes,
            } => {
                use std::sync::atomic::{AtomicU64, Ordering};
                let sum = AtomicU64::new(0);
                let (iters, chunk, episodes) = (*iters, *chunk, *episodes);
                rt.parallel(|ctx| {
                    for _ in 0..episodes {
                        // Accumulate locally; one shared add per episode so
                        // the measured cost is claiming, not the checksum.
                        let mut local = 0u64;
                        ctx.for_schedule(Schedule::Dynamic(chunk), 0, iters - 1, 1, |i| {
                            local = local.wrapping_add(task_mix(i as u64));
                        });
                        sum.fetch_add(local, Ordering::Relaxed);
                        ctx.barrier();
                    }
                });
                sum.load(Ordering::Relaxed) as f64
            }
        }
    }
}

/// The EPCC directives the meter tracks: the heavily-used ones the paper
/// highlights (parallel, parallel-for, reduction) plus barrier, the
/// dominant synchronization cost.
pub const METER_DIRECTIVES: [Directive; 4] = [
    Directive::Parallel,
    Directive::ParallelFor,
    Directive::Barrier,
    Directive::Reduction,
];

/// Build the meter's workload set for `suite` at `scale`. The returned
/// sizing is deterministic: two processes constructing the same
/// `(suite, scale)` perform identical work per repetition.
pub fn meter_workloads(suite: MeterSuite, scale: MeterScale) -> Vec<MeterWorkload> {
    match suite {
        MeterSuite::Epcc => {
            let cfg = match scale {
                MeterScale::Quick => EpccConfig::meter_quick(),
                MeterScale::Full => EpccConfig::meter_full(),
            };
            METER_DIRECTIVES
                .iter()
                .map(|&directive| MeterWorkload {
                    name: directive.name().to_lowercase().replace(' ', "-"),
                    suite: MeterSuite::Epcc,
                    unit: WorkUnit::Epcc {
                        directive,
                        cfg: cfg.clone(),
                    },
                    config: None,
                })
                .collect()
        }
        MeterSuite::Sync => {
            // Oversubscribed team sizes (32- and 64-thread teams on a
            // far smaller host): the fork wake fan-out and barrier
            // parking paths only show their scaling behaviour when
            // threads heavily outnumber cores.
            let (forks, episodes) = match scale {
                MeterScale::Quick => (30, 60),
                MeterScale::Full => (150, 300),
            };
            vec![
                MeterWorkload {
                    name: "forkjoin-32".to_string(),
                    suite: MeterSuite::Sync,
                    unit: WorkUnit::Sync {
                        kind: SyncKind::ForkJoin,
                        inner: forks,
                    },
                    config: Some(Config::with_threads(32)),
                },
                MeterWorkload {
                    name: "barrier-storm-64".to_string(),
                    suite: MeterSuite::Sync,
                    unit: WorkUnit::Sync {
                        kind: SyncKind::BarrierStorm,
                        inner: episodes,
                    },
                    config: Some(Config::with_threads(64)),
                },
            ]
        }
        MeterSuite::Topo => {
            // Ablation pairs differing only in the knob under test.
            // Nested fork: a 2-thread outer team whose master repeatedly
            // forks a 16-wide sub-team — leased from the pool vs spawned
            // as ephemeral OS threads. Barrier: a 32-thread
            // oversubscribed storm under the topology-shaped combining
            // tree vs the flat fan-in-4 tree.
            let (forks, episodes) = match scale {
                MeterScale::Quick => (25, 60),
                MeterScale::Full => (120, 300),
            };
            let nested_fork = |name: &str, ephemeral: bool| MeterWorkload {
                name: name.to_string(),
                suite: MeterSuite::Topo,
                unit: WorkUnit::NestedFork { width: 16, forks },
                config: Some(Config {
                    num_threads: 2,
                    nested: true,
                    nested_ephemeral: ephemeral,
                    ..Config::default()
                }),
            };
            let storm = |name: &str, barrier: BarrierKind| MeterWorkload {
                name: name.to_string(),
                suite: MeterSuite::Topo,
                unit: WorkUnit::Sync {
                    kind: SyncKind::BarrierStorm,
                    inner: episodes,
                },
                config: Some(Config {
                    num_threads: 32,
                    barrier,
                    ..Config::default()
                }),
            };
            // Claimer probe: a 16-thread dynamic(2) loop whose chunks are
            // claimed through the schedule layer. The hierarchical claimer
            // has no Config knob — it engages when the team spans more
            // than one package of `Topology::current()` — so the ablation
            // is across runs: under OMP_ORA_TOPOLOGY=2x4x2 the 16 threads
            // span 2 packages (per-package claim tiers), under 1x16x1
            // they collapse to the flat global claim line.
            let (claim_iters, claim_eps) = match scale {
                MeterScale::Quick => (4096, 40),
                MeterScale::Full => (4096, 200),
            };
            vec![
                nested_fork("nested-pooled-16", false),
                nested_fork("nested-ephemeral-16", true),
                storm("barrier-shaped-32", BarrierKind::Shaped),
                storm("barrier-tree-32", BarrierKind::Tree),
                MeterWorkload {
                    name: "dynamic-claim-16".to_string(),
                    suite: MeterSuite::Topo,
                    unit: WorkUnit::DynamicClaim {
                        iters: claim_iters,
                        chunk: 2,
                        episodes: claim_eps,
                    },
                    config: Some(Config::with_threads(16)),
                },
            ]
        }
        MeterSuite::Dispatch => {
            // Event-dense shapes: a barrier storm fires two explicit-
            // barrier events per thread per episode (the densest stream
            // the runtime produces), and a fork flood fires the full
            // fork/join + implicit-barrier cycle per region. Sized larger
            // than the sync suite so per-event dispatch cost dominates
            // the synchronization cost being dispatched about.
            // Sized so one repetition spans several governor calibration
            // windows (the governed rung retunes at 0.1 ms granularity):
            // the governor must have room to measure, plan, and settle
            // within a single attachment.
            let (forks, episodes) = match scale {
                MeterScale::Quick => (700, 2400),
                MeterScale::Full => (3000, 10000),
            };
            vec![
                MeterWorkload {
                    name: "fork-flood".to_string(),
                    suite: MeterSuite::Dispatch,
                    unit: WorkUnit::Sync {
                        kind: SyncKind::ForkJoin,
                        inner: forks,
                    },
                    config: None,
                },
                MeterWorkload {
                    name: "barrier-storm".to_string(),
                    suite: MeterSuite::Dispatch,
                    unit: WorkUnit::Sync {
                        kind: SyncKind::BarrierStorm,
                        inner: episodes,
                    },
                    config: None,
                },
            ]
        }
        MeterSuite::Tasks => {
            // Task-per-spawner counts sized so one repetition retires a
            // few thousand tasks (spawn cost dominates the trivial task
            // bodies) while staying comfortably under a second even on
            // the serialized single-queue pool.
            let (tasks, flood_eps, steal_eps) = match scale {
                MeterScale::Quick => (64, 12, 8),
                MeterScale::Full => (64, 60, 40),
            };
            vec![
                MeterWorkload {
                    name: "spawn-flood".to_string(),
                    suite: MeterSuite::Tasks,
                    unit: WorkUnit::Tasks {
                        shape: TaskShape::SpawnFlood,
                        tasks,
                        episodes: flood_eps,
                    },
                    config: None,
                },
                MeterWorkload {
                    name: "producer-steal".to_string(),
                    suite: MeterSuite::Tasks,
                    unit: WorkUnit::Tasks {
                        shape: TaskShape::ProducerSteal,
                        tasks: tasks * 3,
                        episodes: steal_eps,
                    },
                    config: None,
                },
            ]
        }
        MeterSuite::Npb => {
            let (kernels, class, passes) = match scale {
                MeterScale::Quick => (vec![NpbKernel::cg(), NpbKernel::ep()], NpbClass::S, 10),
                MeterScale::Full => (
                    vec![NpbKernel::cg(), NpbKernel::ep(), NpbKernel::ft()],
                    NpbClass::W,
                    4,
                ),
            };
            kernels
                .into_iter()
                .map(|kernel| MeterWorkload {
                    name: kernel.name.to_lowercase(),
                    suite: MeterSuite::Npb,
                    unit: WorkUnit::Npb {
                        kernel,
                        class,
                        passes,
                    },
                    config: None,
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for s in [MeterScale::Quick, MeterScale::Full] {
            assert_eq!(MeterScale::from_key(s.key()), Some(s));
        }
        for s in [
            MeterSuite::Epcc,
            MeterSuite::Npb,
            MeterSuite::Sync,
            MeterSuite::Dispatch,
            MeterSuite::Tasks,
            MeterSuite::Topo,
        ] {
            assert_eq!(MeterSuite::from_key(s.key()), Some(s));
        }
        assert_eq!(MeterScale::from_key("paper"), None);
        assert_eq!(MeterSuite::from_key("mz"), None);
    }

    #[test]
    fn quick_workload_set_is_stable() {
        let epcc = meter_workloads(MeterSuite::Epcc, MeterScale::Quick);
        let names: Vec<&str> = epcc.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["parallel", "parallel-for", "barrier", "reduction"]);
        let npb = meter_workloads(MeterSuite::Npb, MeterScale::Quick);
        let names: Vec<&str> = npb.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["cg", "ep"]);
        let sync = meter_workloads(MeterSuite::Sync, MeterScale::Quick);
        let names: Vec<&str> = sync.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["forkjoin-32", "barrier-storm-64"]);
        let dispatch = meter_workloads(MeterSuite::Dispatch, MeterScale::Quick);
        let names: Vec<&str> = dispatch.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["fork-flood", "barrier-storm"]);
        let tasks = meter_workloads(MeterSuite::Tasks, MeterScale::Quick);
        let names: Vec<&str> = tasks.iter().map(|w| w.name()).collect();
        assert_eq!(names, ["spawn-flood", "producer-steal"]);
        let topo = meter_workloads(MeterSuite::Topo, MeterScale::Quick);
        let names: Vec<&str> = topo.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            [
                "nested-pooled-16",
                "nested-ephemeral-16",
                "barrier-shaped-32",
                "barrier-tree-32",
                "dynamic-claim-16"
            ]
        );
    }

    #[test]
    fn sync_and_topo_workloads_pin_their_runtime_configs() {
        for w in meter_workloads(MeterSuite::Sync, MeterScale::Quick) {
            let c = w.runtime_config().expect("sync pins oversubscription");
            assert!(c.num_threads >= 32, "{} is not oversubscribed", w.name());
        }
        let topo = meter_workloads(MeterSuite::Topo, MeterScale::Quick);
        let cfg = |name: &str| {
            topo.iter()
                .find(|w| w.name() == name)
                .and_then(|w| w.runtime_config())
                .unwrap_or_else(|| panic!("{name} must pin a config"))
        };
        assert!(cfg("nested-pooled-16").nested);
        assert!(!cfg("nested-pooled-16").nested_ephemeral);
        assert!(cfg("nested-ephemeral-16").nested_ephemeral);
        assert_eq!(cfg("barrier-shaped-32").barrier, BarrierKind::Shaped);
        assert_eq!(cfg("barrier-shaped-32").num_threads, 32);
        assert_eq!(cfg("barrier-tree-32").barrier, BarrierKind::Tree);
        // 16 threads span 2 packages under the 2x4x2 reference shape, so
        // the claimer probe actually exercises the hierarchical path there.
        assert_eq!(cfg("dynamic-claim-16").num_threads, 16);
        // The ablation pairs must differ only in the knob under test.
        assert_eq!(
            topo[0].work_units(),
            topo[1].work_units(),
            "nested ablation pair does different work"
        );
        assert_eq!(topo[2].work_units(), topo[3].work_units());
    }

    /// The claimer probe's checksum covers every loop iteration exactly
    /// once per episode, whichever claimer tier served the chunks.
    #[test]
    fn dynamic_claim_rep_covers_every_iteration() {
        let topo = meter_workloads(MeterSuite::Topo, MeterScale::Quick);
        let w = topo
            .iter()
            .find(|w| w.name() == "dynamic-claim-16")
            .expect("claimer probe in topo suite");
        let rt = OpenMp::with_config(w.runtime_config().expect("pinned").clone());
        let per_episode: u64 = (0..4096u64)
            .map(task_mix)
            .fold(0u64, |a, b| a.wrapping_add(b));
        let expect = (0..w.work_units()).fold(0u64, |a, _| a.wrapping_add(per_episode));
        // The rep returns the checksum through f64; compare after the
        // same (deterministic) u64 → f64 conversion.
        assert_eq!(w.run_rep(&rt).to_bits(), (expect as f64).to_bits());
    }

    #[test]
    fn nested_fork_rep_runs_on_a_nested_runtime() {
        let topo = meter_workloads(MeterSuite::Topo, MeterScale::Quick);
        let w = &topo[0];
        let rt = OpenMp::with_config(w.runtime_config().expect("pinned").clone());
        let before = rt.region_calls();
        let _ = w.run_rep(&rt);
        // One outer region + `forks` nested regions per repetition.
        assert_eq!(rt.region_calls() - before, w.work_units() + 1);
    }

    #[test]
    fn task_reps_run_and_checksum() {
        let rt = OpenMp::with_threads(2);
        for w in meter_workloads(MeterSuite::Tasks, MeterScale::Quick) {
            assert!(w.work_units() > 0);
            let a = w.run_rep(&rt);
            let b = w.run_rep(&rt);
            assert!(a != 0.0, "{} retired no tasks", w.name());
            assert_eq!(a.to_bits(), b.to_bits(), "{} checksum drifted", w.name());
        }
    }

    #[test]
    fn sync_reps_run_and_count_work() {
        let rt = OpenMp::with_threads(2);
        for w in meter_workloads(MeterSuite::Sync, MeterScale::Quick) {
            assert!(w.work_units() > 0);
            let before = rt.region_calls();
            let _ = w.run_rep(&rt);
            assert!(rt.region_calls() > before, "{} forked no region", w.name());
        }
    }

    #[test]
    fn npb_meter_kernels_are_deterministic_only() {
        for scale in [MeterScale::Quick, MeterScale::Full] {
            for w in meter_workloads(MeterSuite::Npb, scale) {
                assert_ne!(w.name(), "lu-hp", "partition-dependent kernel in meter set");
            }
        }
    }

    #[test]
    fn work_units_are_deterministic_across_constructions() {
        let a: Vec<u64> = meter_workloads(MeterSuite::Npb, MeterScale::Quick)
            .iter()
            .map(|w| w.work_units())
            .collect();
        let b: Vec<u64> = meter_workloads(MeterSuite::Npb, MeterScale::Quick)
            .iter()
            .map(|w| w.work_units())
            .collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&u| u > 0));
    }

    #[test]
    fn npb_rep_checksum_is_reproducible() {
        let rt = OpenMp::with_threads(2);
        let w = &meter_workloads(MeterSuite::Npb, MeterScale::Quick)[0];
        let a = w.run_rep(&rt);
        let b = w.run_rep(&rt);
        assert_eq!(a.to_bits(), b.to_bits(), "deterministic kernel drifted");
    }

    #[test]
    fn epcc_rep_runs() {
        let rt = OpenMp::with_threads(2);
        for w in meter_workloads(MeterSuite::Epcc, MeterScale::Quick) {
            let _ = w.run_rep(&rt);
        }
    }
}
