//! EPCC schedbench: loop-scheduling overheads.
//!
//! The second half of the EPCC microbenchmark suite measures the cost of
//! the `schedule(static|dynamic|guided, chunk)` clauses as a function of
//! chunk size. The methodology matches syncbench: a reference run of the
//! bare delay loop against the same loop under each schedule, inside one
//! parallel region; the per-iteration difference is the scheduling
//! overhead (chunk claims, dispatch, and the end-of-loop barrier).

use collector::clock;
use omprt::{OpenMp, Schedule, SourceFunction};

use crate::epcc::delay;

/// One schedbench measurement point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedPoint {
    /// The schedule measured.
    pub schedule: Schedule,
    /// Overhead per loop iteration, seconds.
    pub overhead_per_iter: f64,
    /// Raw per-iteration time under the schedule.
    pub raw_per_iter: f64,
}

/// Configuration for schedbench.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Iterations of the measured loop.
    pub loop_iters: i64,
    /// Repetitions of the loop per measurement.
    pub reps: usize,
    /// Delay length per iteration (flops).
    pub delay_len: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            loop_iters: 512,
            reps: 8,
            delay_len: 32,
        }
    }
}

fn sched_region() -> &'static omprt::RegionHandle {
    use std::sync::OnceLock;
    static REGION: OnceLock<(SourceFunction, omprt::RegionHandle)> = OnceLock::new();
    let (_, r) = REGION.get_or_init(|| {
        let f = SourceFunction::new("epcc_schedbench", "schedbench.rs", 1);
        let r = f.loop_region("sched", 10);
        (f, r)
    });
    r
}

/// Measure one schedule's per-iteration overhead on `rt`.
pub fn measure_schedule(rt: &OpenMp, schedule: Schedule, cfg: &SchedConfig) -> SchedPoint {
    let iters = cfg.loop_iters;
    let dlen = cfg.delay_len;
    let total_iters = (iters as usize * cfg.reps) as f64;

    // Reference: the delay body alone, serial.
    let (_, ref_ticks) = clock::time(|| {
        for _ in 0..cfg.reps {
            for _ in 0..iters {
                std::hint::black_box(delay(dlen));
            }
        }
    });
    let reference = clock::to_secs(ref_ticks) / total_iters;

    // Test: the same loop under the schedule, inside one region.
    let (_, test_ticks) = clock::time(|| {
        rt.parallel_region(sched_region(), |ctx| {
            for _ in 0..cfg.reps {
                ctx.for_schedule(schedule, 0, iters - 1, 1, |_| {
                    std::hint::black_box(delay(dlen));
                });
                ctx.implicit_barrier();
            }
        });
    });
    let raw = clock::to_secs(test_ticks) / total_iters;

    SchedPoint {
        schedule,
        overhead_per_iter: raw - reference,
        raw_per_iter: raw,
    }
}

/// The EPCC schedbench sweep: static/dynamic/guided over doubling chunk
/// sizes (1, 2, 4, …, `max_chunk`).
pub fn sweep(rt: &OpenMp, max_chunk: usize, cfg: &SchedConfig) -> Vec<SchedPoint> {
    let mut points = Vec::new();
    points.push(measure_schedule(rt, Schedule::StaticEven, cfg));
    let mut chunk = 1usize;
    while chunk <= max_chunk {
        points.push(measure_schedule(rt, Schedule::StaticChunk(chunk), cfg));
        points.push(measure_schedule(rt, Schedule::Dynamic(chunk), cfg));
        points.push(measure_schedule(rt, Schedule::Guided(chunk), cfg));
        chunk *= 2;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SchedConfig {
        SchedConfig {
            loop_iters: 64,
            reps: 2,
            delay_len: 8,
        }
    }

    #[test]
    fn every_schedule_measures_finite_overhead() {
        let rt = OpenMp::with_threads(2);
        for schedule in [
            Schedule::StaticEven,
            Schedule::StaticChunk(4),
            Schedule::Dynamic(4),
            Schedule::Guided(2),
        ] {
            let p = measure_schedule(&rt, schedule, &tiny());
            assert!(p.raw_per_iter > 0.0, "{schedule:?}");
            assert!(p.overhead_per_iter.is_finite(), "{schedule:?}");
        }
    }

    #[test]
    fn sweep_covers_all_schedules_per_chunk() {
        let rt = OpenMp::with_threads(2);
        let points = sweep(&rt, 4, &tiny());
        // StaticEven + 3 schedules × chunks {1,2,4}.
        assert_eq!(points.len(), 1 + 3 * 3);
        let dynamics = points
            .iter()
            .filter(|p| matches!(p.schedule, Schedule::Dynamic(_)))
            .count();
        assert_eq!(dynamics, 3);
    }

    #[test]
    fn dynamic_chunk_1_costs_more_than_static_even() {
        // The classic schedbench shape: dynamic,1 claims every iteration
        // through the shared counter, static computes bounds once.
        let rt = OpenMp::with_threads(2);
        let cfg = SchedConfig {
            loop_iters: 2_000,
            reps: 4,
            delay_len: 0,
        };
        let stat = measure_schedule(&rt, Schedule::StaticEven, &cfg);
        let dyn1 = measure_schedule(&rt, Schedule::Dynamic(1), &cfg);
        assert!(
            dyn1.raw_per_iter > stat.raw_per_iter,
            "dynamic,1 {} <= static {}",
            dyn1.raw_per_iter,
            stat.raw_per_iter
        );
    }
}
