//! The EPCC synchronization microbenchmarks (syncbench).
//!
//! Reimplementation of the overhead-measurement methodology used in the
//! paper's §V-A: for each OpenMP directive, measure a *reference* time
//! (the delay workload alone) and a *test* time (the same workload wrapped
//! in the directive, repeated `inner_reps` times), over `outer_reps`
//! repetitions; the per-instance directive overhead is the difference of
//! the per-iteration times. The paper runs "several instances of parallel
//! region, parallel for, and reduction directives (about 20000 each)" —
//! the default paper-scale config reproduces that count.

use std::sync::atomic::{AtomicU64, Ordering};

use collector::clock;
use omprt::{OpenMp, RegionHandle, SourceFunction};

/// The directives syncbench measures (the x-axis of the paper's Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Directive {
    /// `#pragma omp parallel`
    Parallel,
    /// `#pragma omp for` inside an open parallel region
    For,
    /// `#pragma omp parallel for`
    ParallelFor,
    /// `#pragma omp barrier`
    Barrier,
    /// `#pragma omp single`
    Single,
    /// `#pragma omp critical`
    Critical,
    /// `omp_set_lock` / `omp_unset_lock`
    Lock,
    /// `#pragma omp ordered`
    Ordered,
    /// `#pragma omp atomic`
    Atomic,
    /// `reduction(+:x)` on a parallel region
    Reduction,
}

/// All directives in report order.
pub const ALL_DIRECTIVES: [Directive; 10] = [
    Directive::Parallel,
    Directive::For,
    Directive::ParallelFor,
    Directive::Barrier,
    Directive::Single,
    Directive::Critical,
    Directive::Lock,
    Directive::Ordered,
    Directive::Atomic,
    Directive::Reduction,
];

impl Directive {
    /// Display name matching EPCC's.
    pub const fn name(self) -> &'static str {
        match self {
            Directive::Parallel => "PARALLEL",
            Directive::For => "FOR",
            Directive::ParallelFor => "PARALLEL FOR",
            Directive::Barrier => "BARRIER",
            Directive::Single => "SINGLE",
            Directive::Critical => "CRITICAL",
            Directive::Lock => "LOCK/UNLOCK",
            Directive::Ordered => "ORDERED",
            Directive::Atomic => "ATOMIC",
            Directive::Reduction => "REDUCTION",
        }
    }
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct EpccConfig {
    /// Outer repetitions (per-directive statistics sample size).
    pub outer_reps: usize,
    /// Directive instances per outer repetition.
    pub inner_reps: usize,
    /// Delay-loop length (flops) of the synthetic workload.
    pub delay_len: usize,
}

impl Default for EpccConfig {
    fn default() -> Self {
        // Fast defaults for tests; `paper_scale` reproduces §V-A.
        EpccConfig {
            outer_reps: 4,
            inner_reps: 64,
            delay_len: 128,
        }
    }
}

impl EpccConfig {
    /// The paper's scale: outer × inner = 20 000 directive instances.
    pub fn paper_scale() -> Self {
        EpccConfig {
            outer_reps: 20,
            inner_reps: 1_000,
            delay_len: 500,
        }
    }

    /// Deterministic sizing for the `ora-meter` quick mode: small enough
    /// that one [`iterate`] call is a few milliseconds, big enough that a
    /// repetition is dominated by directive work rather than call
    /// overhead. These numbers are part of the `BENCH_epcc.json` baseline
    /// contract — changing them invalidates committed baselines.
    pub fn meter_quick() -> Self {
        EpccConfig {
            outer_reps: 1,
            inner_reps: 256,
            delay_len: 128,
        }
    }

    /// Deterministic sizing for the `ora-meter` full mode (~4× quick).
    pub fn meter_full() -> Self {
        EpccConfig {
            outer_reps: 1,
            inner_reps: 1_024,
            delay_len: 128,
        }
    }
}

/// Statistics of one directive's overhead, in seconds per instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Mean overhead per directive instance.
    pub mean: f64,
    /// Standard deviation over outer repetitions.
    pub sd: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// Mean raw test time per instance (directive + delay), before the
    /// reference is subtracted — the base for overhead-percentage plots.
    pub raw_mean: f64,
}

fn stats(samples: &[f64], raw_mean: f64) -> Stat {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    Stat {
        mean,
        sd: var.sqrt(),
        min: samples.iter().copied().fold(f64::INFINITY, f64::min),
        max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        raw_mean,
    }
}

/// The EPCC delay workload: a dependent floating-point loop the compiler
/// cannot elide.
#[inline(never)]
pub fn delay(len: usize) -> f64 {
    let mut a = 0.0f64;
    for i in 0..len {
        a += (i as f64) * 1e-9;
        a = std::hint::black_box(a);
    }
    a
}

struct Regions {
    parallel: RegionHandle,
    parallel_for: RegionHandle,
    work: RegionHandle,
    reduction: RegionHandle,
}

fn regions() -> &'static Regions {
    use std::sync::OnceLock;
    static REGIONS: OnceLock<Regions> = OnceLock::new();
    REGIONS.get_or_init(|| {
        let f = SourceFunction::new("epcc_syncbench", "epcc.rs", 1);
        Regions {
            parallel: f.region("parallel", 10),
            parallel_for: f.loop_region("parfor", 20),
            work: f.region("work", 30),
            reduction: f.loop_region("reduction", 40),
        }
    })
}

/// Measure one directive's per-instance overhead on `rt`.
pub fn measure(rt: &OpenMp, directive: Directive, cfg: &EpccConfig) -> Stat {
    let inner = cfg.inner_reps;
    let dlen = cfg.delay_len;
    let nthreads = rt.num_threads();

    let mut samples = Vec::with_capacity(cfg.outer_reps);
    let mut raw_total = 0.0f64;

    for _ in 0..cfg.outer_reps {
        // Reference: the delay alone, once per inner rep.
        let (_, ref_ticks) = clock::time(|| {
            for _ in 0..inner {
                std::hint::black_box(delay(dlen));
            }
        });
        let reference = clock::to_secs(ref_ticks) / inner as f64;

        let (_, test_ticks) = clock::time(|| run_directive(rt, directive, inner, dlen, nthreads));
        let test = clock::to_secs(test_ticks) / inner as f64;

        raw_total += test;
        samples.push(test - reference);
    }

    stats(&samples, raw_total / cfg.outer_reps as f64)
}

/// Iteration hook for external measurement harnesses (`ora-meter`): run
/// exactly one repetition of `directive` — `cfg.inner_reps` directive
/// instances over the configured delay workload — without any internal
/// timing or reference subtraction. The caller times the whole call,
/// which is what makes per-repetition statistics (median, bootstrap CI)
/// possible outside this module.
pub fn iterate(rt: &OpenMp, directive: Directive, cfg: &EpccConfig) {
    run_directive(
        rt,
        directive,
        cfg.inner_reps,
        cfg.delay_len,
        rt.num_threads(),
    );
}

fn run_directive(rt: &OpenMp, directive: Directive, inner: usize, dlen: usize, nthreads: usize) {
    let r = regions();
    match directive {
        Directive::Parallel => {
            for _ in 0..inner {
                rt.parallel_region(&r.parallel, |_| {
                    std::hint::black_box(delay(dlen));
                });
            }
        }
        Directive::For => {
            rt.parallel_region(&r.work, |ctx| {
                for _ in 0..inner {
                    ctx.for_each_barrier(0, nthreads as i64 - 1, |_| {
                        std::hint::black_box(delay(dlen));
                    });
                }
            });
        }
        Directive::ParallelFor => {
            for _ in 0..inner {
                rt.parallel_region(&r.parallel_for, |ctx| {
                    ctx.for_each(0, nthreads as i64 - 1, |_| {
                        std::hint::black_box(delay(dlen));
                    });
                });
            }
        }
        Directive::Barrier => {
            rt.parallel_region(&r.work, |ctx| {
                for _ in 0..inner {
                    std::hint::black_box(delay(dlen));
                    ctx.barrier();
                }
            });
        }
        Directive::Single => {
            rt.parallel_region(&r.work, |ctx| {
                for _ in 0..inner {
                    ctx.single(|| {
                        std::hint::black_box(delay(dlen));
                    });
                }
            });
        }
        Directive::Critical => {
            rt.parallel_region(&r.work, |ctx| {
                for _ in 0..inner / nthreads.max(1) {
                    ctx.critical("epcc", || {
                        std::hint::black_box(delay(dlen));
                    });
                }
            });
        }
        Directive::Lock => {
            let lock = rt.new_lock();
            rt.parallel_region(&r.work, |_| {
                for _ in 0..inner / nthreads.max(1) {
                    lock.set();
                    std::hint::black_box(delay(dlen));
                    lock.unset();
                }
            });
        }
        Directive::Ordered => {
            rt.parallel_region(&r.work, |ctx| {
                ctx.for_ordered(0, inner as i64 - 1, 1, |_| {
                    std::hint::black_box(delay(dlen));
                });
            });
        }
        Directive::Atomic => {
            let cell = AtomicU64::new(0);
            rt.parallel_region(&r.work, |ctx| {
                for _ in 0..inner / nthreads.max(1) {
                    ctx.atomic_add_f64(&cell, 1.0);
                }
            });
            std::hint::black_box(cell.load(Ordering::Relaxed));
        }
        Directive::Reduction => {
            for _ in 0..inner {
                std::hint::black_box(rt.parallel_for_sum(
                    &r.reduction,
                    0,
                    nthreads as i64 - 1,
                    |_| delay(dlen),
                ));
            }
        }
    }
}

/// Run the full suite, returning `(directive, overhead stat)` pairs.
pub fn run_all(rt: &OpenMp, cfg: &EpccConfig) -> Vec<(Directive, Stat)> {
    ALL_DIRECTIVES
        .iter()
        .map(|&d| (d, measure(rt, d, cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EpccConfig {
        EpccConfig {
            outer_reps: 2,
            inner_reps: 8,
            delay_len: 32,
        }
    }

    #[test]
    fn delay_scales_with_length() {
        let (_, short) = clock::time(|| std::hint::black_box(delay(1_000)));
        let (_, long) = clock::time(|| std::hint::black_box(delay(100_000)));
        assert!(long > short);
    }

    #[test]
    fn every_directive_produces_finite_stats() {
        let rt = OpenMp::with_threads(2);
        for d in ALL_DIRECTIVES {
            let s = measure(&rt, d, &tiny());
            assert!(s.mean.is_finite(), "{d:?}");
            assert!(s.sd.is_finite() && s.sd >= 0.0, "{d:?}");
            assert!(s.min <= s.max, "{d:?}");
            assert!(s.raw_mean > 0.0, "{d:?}");
        }
    }

    #[test]
    fn parallel_overhead_exceeds_barrier_free_work() {
        // A full fork/join per instance must cost more than the raw delay
        // (i.e. the measured overhead is positive).
        let rt = OpenMp::with_threads(2);
        let s = measure(&rt, Directive::Parallel, &tiny());
        assert!(
            s.mean > 0.0,
            "fork/join should add measurable overhead, got {}",
            s.mean
        );
    }

    #[test]
    fn run_all_covers_all_directives() {
        let rt = OpenMp::with_threads(2);
        let results = run_all(&rt, &tiny());
        assert_eq!(results.len(), ALL_DIRECTIVES.len());
    }

    #[test]
    fn paper_scale_matches_published_instance_count() {
        let c = EpccConfig::paper_scale();
        assert_eq!(c.outer_reps * c.inner_reps, 20_000);
    }
}

#[cfg(test)]
mod stat_tests {
    use super::*;

    #[test]
    fn stats_arithmetic_is_correct() {
        let s = stats(&[1.0, 2.0, 3.0], 2.5);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // Population sd of [1,2,3] = sqrt(2/3).
        assert!((s.sd - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.raw_mean, 2.5);
    }

    #[test]
    fn directive_names_are_epcc_style() {
        for d in ALL_DIRECTIVES {
            assert!(!d.name().is_empty());
            assert_eq!(d.name(), d.name().to_uppercase());
        }
    }
}
