//! EPCC arraybench: data-clause overheads as a function of array size.
//!
//! The third EPCC microbenchmark family measures what `private`,
//! `firstprivate`, and `copyprivate` clauses cost as the privatized array
//! grows (EPCC uses powers of 3 up to 59049 elements). In `omprt`'s
//! closure model the clauses map directly:
//!
//! * **private** — each thread allocates its own uninitialized array
//!   inside the region;
//! * **firstprivate** — each thread clones the master's array on entry;
//! * **copyprivate** — one thread computes the array inside a `single`
//!   and the construct broadcasts a copy to every thread.

use collector::clock;
use omprt::{OpenMp, RegionHandle, SourceFunction};

/// The data clauses arraybench measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClause {
    /// Thread-local uninitialized allocation.
    Private,
    /// Copy-in from the enclosing scope.
    FirstPrivate,
    /// Broadcast from a `single` executor.
    CopyPrivate,
}

impl DataClause {
    /// EPCC's display name.
    pub const fn name(self) -> &'static str {
        match self {
            DataClause::Private => "PRIVATE",
            DataClause::FirstPrivate => "FIRSTPRIVATE",
            DataClause::CopyPrivate => "COPYPRIVATE",
        }
    }
}

/// One measurement: clause × array size → per-region overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayPoint {
    /// The clause.
    pub clause: DataClause,
    /// Array length in `f64`s.
    pub size: usize,
    /// Seconds per region, reference (empty region) subtracted.
    pub overhead_per_region: f64,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Regions per measurement.
    pub inner_reps: usize,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig { inner_reps: 64 }
    }
}

fn region() -> &'static RegionHandle {
    use std::sync::OnceLock;
    static REGION: OnceLock<(SourceFunction, RegionHandle)> = OnceLock::new();
    let (_, r) = REGION.get_or_init(|| {
        let f = SourceFunction::new("epcc_arraybench", "arraybench.rs", 1);
        let r = f.region("data", 10);
        (f, r)
    });
    r
}

fn consume(arr: &[f64]) {
    // Touch the array so the clause's copy cannot be elided.
    std::hint::black_box(arr.first().copied().unwrap_or(0.0) + arr.last().copied().unwrap_or(0.0));
}

/// Measure one clause at one array size.
pub fn measure(rt: &OpenMp, clause: DataClause, size: usize, cfg: &ArrayConfig) -> ArrayPoint {
    let reps = cfg.inner_reps;
    let master_copy: Vec<f64> = (0..size).map(|i| i as f64).collect();

    // Reference: the same number of empty regions.
    let (_, ref_ticks) = clock::time(|| {
        for _ in 0..reps {
            rt.parallel_region(region(), |_| {});
        }
    });

    let (_, test_ticks) = clock::time(|| {
        for _ in 0..reps {
            match clause {
                DataClause::Private => rt.parallel_region(region(), |_| {
                    let private: Vec<f64> = Vec::with_capacity(size);
                    std::hint::black_box(private.capacity());
                }),
                DataClause::FirstPrivate => rt.parallel_region(region(), |_| {
                    let firstprivate = master_copy.clone();
                    consume(&firstprivate);
                }),
                DataClause::CopyPrivate => rt.parallel_region(region(), |ctx| {
                    let broadcast: Vec<f64> =
                        ctx.single_copy(|| (0..size).map(|i| i as f64 + 1.0).collect());
                    consume(&broadcast);
                }),
            }
        }
    });

    let per_region = (clock::to_secs(test_ticks) - clock::to_secs(ref_ticks)) / reps as f64;
    ArrayPoint {
        clause,
        size,
        overhead_per_region: per_region,
    }
}

/// The EPCC sweep: every clause at powers of 3 up to `max_size`.
pub fn sweep(rt: &OpenMp, max_size: usize, cfg: &ArrayConfig) -> Vec<ArrayPoint> {
    let mut points = Vec::new();
    let mut size = 1usize;
    while size <= max_size {
        for clause in [
            DataClause::Private,
            DataClause::FirstPrivate,
            DataClause::CopyPrivate,
        ] {
            points.push(measure(rt, clause, size, cfg));
        }
        size *= 3;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ArrayConfig {
        ArrayConfig { inner_reps: 8 }
    }

    #[test]
    fn all_clauses_measure_finite_overheads() {
        let rt = OpenMp::with_threads(2);
        for clause in [
            DataClause::Private,
            DataClause::FirstPrivate,
            DataClause::CopyPrivate,
        ] {
            let p = measure(&rt, clause, 81, &tiny());
            assert!(p.overhead_per_region.is_finite(), "{clause:?}");
            assert_eq!(p.size, 81);
        }
    }

    #[test]
    fn sweep_produces_powers_of_three() {
        let rt = OpenMp::with_threads(2);
        let points = sweep(&rt, 27, &tiny());
        let sizes: Vec<usize> = points
            .iter()
            .filter(|p| p.clause == DataClause::Private)
            .map(|p| p.size)
            .collect();
        assert_eq!(sizes, vec![1, 3, 9, 27]);
        assert_eq!(points.len(), 12);
    }

    #[test]
    fn firstprivate_cost_grows_with_size() {
        // Copying 100k doubles per thread per region must cost measurably
        // more than copying 1.
        let rt = OpenMp::with_threads(2);
        let cfg = ArrayConfig { inner_reps: 16 };
        let small = measure(&rt, DataClause::FirstPrivate, 1, &cfg);
        let large = measure(&rt, DataClause::FirstPrivate, 100_000, &cfg);
        assert!(
            large.overhead_per_region > small.overhead_per_region,
            "large {} <= small {}",
            large.overhead_per_region,
            small.overhead_per_region
        );
    }
}
