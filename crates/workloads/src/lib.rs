//! # workloads — the paper's evaluation workloads
//!
//! Everything the paper's §V runs, reimplemented against `omprt`:
//!
//! * [`epcc`] — the EPCC synchronization microbenchmarks with their
//!   reference/test overhead methodology (Fig. 4);
//! * [`npb`] — synthetic NPB3.2-OMP kernels whose parallel-region
//!   structure matches Table I exactly (Fig. 5);
//! * [`mz`] — synthetic NPB3.2-MZ-MPI hybrids over a rank simulation,
//!   reproducing Table II's per-process call counts (Fig. 6);
//! * [`schedbench`] — the EPCC scheduling-overhead sweep (chunk-size
//!   ablation for static/dynamic/guided schedules);
//! * [`arraybench`] — the EPCC data-clause sweep (private / firstprivate /
//!   copyprivate cost by array size);
//! * [`driver`] — with/without-collection overhead measurement and the
//!   §V-B measurement-vs-communication breakdown;
//! * [`meterwork`] — deterministic, repetition-shaped workload units for
//!   the `ora-meter` overhead experiment (iteration hooks + fixed
//!   work sizing per scale);
//! * [`util`] — shared-array plumbing for the kernels.

#![warn(missing_docs)]

pub mod arraybench;
pub mod driver;
pub mod epcc;
pub mod meterwork;
pub mod mz;
pub mod npb;
pub mod schedbench;
pub mod util;

pub use driver::{measure_breakdown, measure_overhead, OverheadBreakdown, OverheadResult};
pub use epcc::{Directive, EpccConfig, ALL_DIRECTIVES};
pub use meterwork::{meter_workloads, MeterScale, MeterSuite, MeterWorkload, METER_DIRECTIVES};
pub use mz::{CollectMode, MzBenchmark, MzRunResult};
pub use npb::{NpbClass, NpbKernel, RegionSpec, WorkKind};
