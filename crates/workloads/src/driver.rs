//! Overhead-measurement driver: run a workload with and without ORA
//! collection and report the percentage increase — the quantity plotted in
//! the paper's Figures 4-6.

use collector::{clock, Mode, Profiler, ProfilerConfig, RuntimeHandle};
use omprt::OpenMp;
use ora_core::OraResult;

/// Result of one with/without comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadResult {
    /// Seconds without collection.
    pub base_secs: f64,
    /// Seconds with collection enabled.
    pub collected_secs: f64,
}

impl OverheadResult {
    /// Percentage increase from enabling collection. The paper lists
    /// sub-1% cases as zero overhead; we report the raw value and let the
    /// harness round.
    pub fn overhead_pct(&self) -> f64 {
        if self.base_secs <= 0.0 {
            return 0.0;
        }
        (self.collected_secs - self.base_secs) / self.base_secs * 100.0
    }

    /// The paper's presentation rule: values below 1% are listed as zero.
    pub fn overhead_pct_clamped(&self) -> f64 {
        let pct = self.overhead_pct();
        if pct < 1.0 {
            0.0
        } else {
            pct
        }
    }
}

/// Time one closure in seconds.
pub fn time_secs(f: impl FnOnce()) -> f64 {
    let (_, t) = clock::time(f);
    clock::to_secs(t)
}

/// Run `workload` `reps` times and return the minimum wall time — the
/// standard way to suppress scheduler noise on a shared machine.
pub fn best_of(reps: usize, mut workload: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(time_secs(&mut workload));
    }
    best
}

/// Measure the collection overhead of `workload` on `rt`: run it `reps`
/// times bare and `reps` times with a profiler attached (`mode`), taking
/// the best of each.
pub fn measure_overhead(
    rt: &OpenMp,
    reps: usize,
    mode: Mode,
    mut workload: impl FnMut(&OpenMp),
) -> OraResult<OverheadResult> {
    // Warm up the worker pool so thread creation isn't attributed to
    // either side.
    rt.parallel(|_| {});

    let base_secs = best_of(reps, || workload(rt));

    let handle =
        RuntimeHandle::discover_named(rt.symbol_name()).ok_or(ora_core::OraError::Error)?;
    let profiler = Profiler::attach(
        handle,
        ProfilerConfig {
            mode,
            ..ProfilerConfig::default()
        },
    )?;
    let collected_secs = best_of(reps, || workload(rt));
    let _profile = profiler.finish();

    Ok(OverheadResult {
        base_secs,
        collected_secs,
    })
}

/// The §V-B breakdown: split total collection overhead into the
/// measurement/storage component and the communication/callback component
/// by running the workload bare, with empty callbacks, and with the full
/// profiler.
#[derive(Debug, Clone, Copy)]
pub struct OverheadBreakdown {
    /// Seconds with no collection.
    pub base_secs: f64,
    /// Seconds with callbacks registered but recording nothing.
    pub callbacks_secs: f64,
    /// Seconds with full measurement and storage.
    pub full_secs: f64,
}

impl OverheadBreakdown {
    /// Total overhead in seconds.
    pub fn total_overhead(&self) -> f64 {
        (self.full_secs - self.base_secs).max(0.0)
    }

    /// Fraction of the overhead attributable to performance
    /// measurement/storage (the paper reports 81.22% for LU-HP and 99.35%
    /// for SP-MZ).
    pub fn measurement_fraction(&self) -> f64 {
        let total = self.total_overhead();
        if total <= 0.0 {
            return 0.0;
        }
        ((self.full_secs - self.callbacks_secs).max(0.0) / total).min(1.0)
    }

    /// Fraction attributable to runtime↔collector communication
    /// (callbacks and event dispatch).
    pub fn communication_fraction(&self) -> f64 {
        let total = self.total_overhead();
        if total <= 0.0 {
            return 0.0;
        }
        1.0 - self.measurement_fraction()
    }
}

/// Measure the full §V-B breakdown of `workload` on `rt`.
pub fn measure_breakdown(
    rt: &OpenMp,
    reps: usize,
    mut workload: impl FnMut(&OpenMp),
) -> OraResult<OverheadBreakdown> {
    rt.parallel(|_| {});
    let base_secs = best_of(reps, || workload(rt));

    let handle =
        RuntimeHandle::discover_named(rt.symbol_name()).ok_or(ora_core::OraError::Error)?;
    let p = Profiler::attach(
        handle.clone(),
        ProfilerConfig {
            mode: Mode::CallbacksOnly,
            ..ProfilerConfig::default()
        },
    )?;
    let callbacks_secs = best_of(reps, || workload(rt));
    p.finish();

    let p = Profiler::attach(handle, ProfilerConfig::default())?;
    let full_secs = best_of(reps, || workload(rt));
    p.finish();

    Ok(OverheadBreakdown {
        base_secs,
        callbacks_secs,
        full_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_pct_arithmetic() {
        let r = OverheadResult {
            base_secs: 2.0,
            collected_secs: 2.1,
        };
        assert!((r.overhead_pct() - 5.0).abs() < 1e-9);
        assert_eq!(
            OverheadResult {
                base_secs: 2.0,
                collected_secs: 2.01
            }
            .overhead_pct_clamped(),
            0.0
        );
        assert_eq!(
            OverheadResult {
                base_secs: 0.0,
                collected_secs: 1.0
            }
            .overhead_pct(),
            0.0
        );
    }

    #[test]
    fn breakdown_fractions_are_sane() {
        let b = OverheadBreakdown {
            base_secs: 1.0,
            callbacks_secs: 1.02,
            full_secs: 1.10,
        };
        let m = b.measurement_fraction();
        let c = b.communication_fraction();
        assert!((m + c - 1.0).abs() < 1e-9);
        assert!(m > c, "measurement should dominate in this example");
        assert!((b.total_overhead() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn breakdown_handles_zero_overhead() {
        let b = OverheadBreakdown {
            base_secs: 1.0,
            callbacks_secs: 1.0,
            full_secs: 1.0,
        };
        assert_eq!(b.measurement_fraction(), 0.0);
        assert_eq!(b.communication_fraction(), 0.0);
    }

    #[test]
    fn measure_overhead_runs_end_to_end() {
        let rt = OpenMp::with_threads(2);
        let r = measure_overhead(&rt, 2, Mode::Full, |rt| {
            for _ in 0..20 {
                rt.parallel(|ctx| {
                    let mut x = 0.0;
                    ctx.for_each(0, 499, |i| x += i as f64);
                    std::hint::black_box(x);
                });
            }
        })
        .unwrap();
        assert!(r.base_secs > 0.0);
        assert!(r.collected_secs > 0.0);
    }

    #[test]
    fn measure_breakdown_runs_end_to_end() {
        let rt = OpenMp::with_threads(2);
        let b = measure_breakdown(&rt, 2, |rt| {
            for _ in 0..20 {
                rt.parallel(|_| {});
            }
        })
        .unwrap();
        assert!(b.base_secs > 0.0);
        let m = b.measurement_fraction();
        assert!((0.0..=1.0).contains(&m));
    }
}
