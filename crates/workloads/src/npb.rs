//! Synthetic NAS Parallel Benchmarks (NPB3.2-OMP analogues).
//!
//! The paper's Fig. 5 overheads are driven by one variable the paper
//! itself identifies: "a higher number of parallel region calls will
//! result in more overheads". Table I publishes the structure — number of
//! distinct parallel regions and total region calls per benchmark — so
//! these synthetic kernels reproduce *exactly those counts* at class
//! B-sim, with representative per-region compute (stencils, line solves,
//! sparse matvec, wavefront sweeps) standing in for the original physics.
//!
//! | Benchmark | regions | region calls |
//! |-----------|---------|--------------|
//! | BT        | 11      | 1 014        |
//! | EP        | 3       | 3            |
//! | SP        | 14      | 3 618        |
//! | MG        | 10      | 1 281        |
//! | FT        | 9       | 112          |
//! | CG        | 15      | 2 212        |
//! | LU-HP     | 16      | 298 959      |
//! | LU        | 9       | 518          |

use std::sync::atomic::{AtomicU64, Ordering};

use omprt::{OpenMp, RegionHandle, SourceFunction};

use crate::util::SharedVec;

/// Problem classes: `Bsim` keeps Table I's exact call counts; `S` and `W`
/// scale them down for fast tests while preserving the region structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbClass {
    /// Tiny: call counts divided by 200 (ceil). For unit tests.
    S,
    /// Workstation: call counts divided by 20 (ceil).
    W,
    /// The paper's Class B structure: exact Table I call counts.
    Bsim,
}

impl NpbClass {
    fn call_divisor(self) -> u64 {
        match self {
            NpbClass::S => 200,
            NpbClass::W => 20,
            NpbClass::Bsim => 1,
        }
    }

    /// Base array length for per-region compute. Sized so that a typical
    /// region's work dominates the fork/join cost (as in the original
    /// Class B), keeping collection overheads in the paper's few-percent
    /// range for all benchmarks except the region-call-heavy LU-HP.
    pub fn array_len(self) -> usize {
        match self {
            NpbClass::S => 1_024,
            NpbClass::W => 8_192,
            NpbClass::Bsim => 16_384,
        }
    }
}

/// What a region's body computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// Fill with an analytic expression (initialization regions).
    Init,
    /// Three-point stencil relaxation (MG/BT/SP right-hand sides).
    Stencil,
    /// Row-wise dependent forward/backward sweeps (BT/SP/LU line solves).
    LineSolve,
    /// `u += alpha * v` (solution updates).
    Axpy,
    /// Sum-of-squares reduction into the checksum (norms, verification).
    Norm,
    /// Per-element pseudo-random Gaussian-pair counting (EP).
    Random,
    /// Small trigonometric transform (FT butterflies).
    Dft,
    /// Fixed-bandwidth sparse matrix-vector product (CG).
    SparseMv,
    /// Short dependent chains per chunk (LU-HP hyperplane slices).
    Wavefront,
}

/// One parallel region of a kernel: identity + call count + body.
#[derive(Debug, Clone)]
pub struct RegionSpec {
    /// Region name (the outlined symbol's tag).
    pub tag: &'static str,
    /// Calls at class B-sim (Table I).
    pub calls_b: u64,
    /// Body kind.
    pub work: WorkKind,
    /// Fraction of the class array length this region touches per call
    /// (LU-HP hyperplane slices are small; norms span everything).
    pub size_factor: f64,
}

impl RegionSpec {
    const fn new(tag: &'static str, calls_b: u64, work: WorkKind, size_factor: f64) -> Self {
        RegionSpec {
            tag,
            calls_b,
            work,
            size_factor,
        }
    }

    /// Calls at `class`.
    pub fn calls(&self, class: NpbClass) -> u64 {
        self.calls_b.div_ceil(class.call_divisor())
    }
}

/// Outcome of a kernel's self-verification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verification {
    /// The multithreaded checksum matched the single-thread reference.
    Successful {
        /// Relative error against the reference.
        rel_error: f64,
    },
    /// The checksums diverged beyond tolerance.
    Failed {
        /// Reference (1-thread) checksum.
        expected: f64,
        /// Measured checksum.
        got: f64,
    },
    /// The kernel's result is partition-dependent by construction (LU-HP's
    /// hyperplane chains), so cross-thread-count comparison is undefined.
    NotApplicable,
}

/// A synthetic NPB kernel.
pub struct NpbKernel {
    /// Benchmark name as in Table I.
    pub name: &'static str,
    specs: Vec<RegionSpec>,
    handles: Vec<RegionHandle>,
}

impl NpbKernel {
    fn build(name: &'static str, specs: Vec<RegionSpec>) -> NpbKernel {
        let func = SourceFunction::new(format!("{}_main", name.to_lowercase()), "npb.rs", 1);
        let handles = specs
            .iter()
            .enumerate()
            .map(|(i, s)| func.region(s.tag, 10 + i as u32))
            .collect();
        NpbKernel {
            name,
            specs,
            handles,
        }
    }

    /// BT: block tridiagonal solver — 11 regions, 1 014 calls.
    pub fn bt() -> NpbKernel {
        Self::build(
            "BT",
            vec![
                RegionSpec::new("init_u", 1, WorkKind::Init, 1.0),
                RegionSpec::new("init_rhs", 1, WorkKind::Init, 1.0),
                RegionSpec::new("exact_rhs", 1, WorkKind::Stencil, 1.0),
                RegionSpec::new("compute_rhs", 201, WorkKind::Stencil, 1.0),
                RegionSpec::new("x_solve", 201, WorkKind::LineSolve, 1.0),
                RegionSpec::new("y_solve", 201, WorkKind::LineSolve, 1.0),
                RegionSpec::new("z_solve", 201, WorkKind::LineSolve, 1.0),
                RegionSpec::new("add", 66, WorkKind::Axpy, 1.0),
                RegionSpec::new("exact_sol", 47, WorkKind::Init, 0.5),
                RegionSpec::new("error_norm", 47, WorkKind::Norm, 1.0),
                RegionSpec::new("rhs_norm", 47, WorkKind::Norm, 1.0),
            ],
        )
    }

    /// EP: embarrassingly parallel — 3 regions, 3 calls.
    pub fn ep() -> NpbKernel {
        Self::build(
            "EP",
            vec![
                RegionSpec::new("init", 1, WorkKind::Init, 1.0),
                RegionSpec::new("gauss_pairs", 1, WorkKind::Random, 16.0),
                RegionSpec::new("verify", 1, WorkKind::Norm, 1.0),
            ],
        )
    }

    /// SP: scalar pentadiagonal solver — 14 regions, 3 618 calls.
    pub fn sp() -> NpbKernel {
        Self::build(
            "SP",
            vec![
                RegionSpec::new("init_u", 1, WorkKind::Init, 1.0),
                RegionSpec::new("exact_rhs", 1, WorkKind::Stencil, 1.0),
                RegionSpec::new("init_ws", 1, WorkKind::Init, 1.0),
                RegionSpec::new("compute_rhs", 400, WorkKind::Stencil, 1.0),
                RegionSpec::new("txinvr", 400, WorkKind::Axpy, 1.0),
                RegionSpec::new("x_solve", 400, WorkKind::LineSolve, 1.0),
                RegionSpec::new("ninvr", 400, WorkKind::Axpy, 1.0),
                RegionSpec::new("y_solve", 400, WorkKind::LineSolve, 1.0),
                RegionSpec::new("pinvr", 400, WorkKind::Axpy, 1.0),
                RegionSpec::new("z_solve", 400, WorkKind::LineSolve, 1.0),
                RegionSpec::new("tzetar", 400, WorkKind::Axpy, 1.0),
                RegionSpec::new("add", 200, WorkKind::Axpy, 1.0),
                RegionSpec::new("rhs_norm", 200, WorkKind::Norm, 1.0),
                RegionSpec::new("final_verify", 15, WorkKind::Norm, 1.0),
            ],
        )
    }

    /// MG: multigrid — 10 regions, 1 281 calls.
    pub fn mg() -> NpbKernel {
        Self::build(
            "MG",
            vec![
                RegionSpec::new("zero_u", 1, WorkKind::Init, 1.0),
                RegionSpec::new("gen_v", 1, WorkKind::Init, 1.0),
                RegionSpec::new("psinv", 250, WorkKind::Stencil, 1.0),
                RegionSpec::new("resid", 250, WorkKind::Stencil, 1.0),
                RegionSpec::new("rprj3", 250, WorkKind::Stencil, 0.5),
                RegionSpec::new("interp", 250, WorkKind::Stencil, 0.5),
                RegionSpec::new("norm2u3", 90, WorkKind::Norm, 1.0),
                RegionSpec::new("comm3", 90, WorkKind::Axpy, 0.25),
                RegionSpec::new("zero3", 90, WorkKind::Init, 0.5),
                RegionSpec::new("final_norm", 9, WorkKind::Norm, 1.0),
            ],
        )
    }

    /// FT: 3-D FFT PDE — 9 regions, 112 calls.
    pub fn ft() -> NpbKernel {
        Self::build(
            "FT",
            vec![
                RegionSpec::new("compute_indexmap", 1, WorkKind::Init, 1.0),
                RegionSpec::new("initial_conditions", 1, WorkKind::Random, 1.0),
                RegionSpec::new("fft_init", 1, WorkKind::Init, 1.0),
                RegionSpec::new("evolve", 20, WorkKind::Axpy, 1.0),
                RegionSpec::new("cffts1", 20, WorkKind::Dft, 1.0),
                RegionSpec::new("cffts2", 20, WorkKind::Dft, 1.0),
                RegionSpec::new("cffts3", 20, WorkKind::Dft, 1.0),
                RegionSpec::new("checksum", 20, WorkKind::Norm, 1.0),
                RegionSpec::new("verify", 9, WorkKind::Norm, 0.5),
            ],
        )
    }

    /// CG: conjugate gradient — 15 regions, 2 212 calls.
    pub fn cg() -> NpbKernel {
        Self::build(
            "CG",
            vec![
                RegionSpec::new("makea", 1, WorkKind::Init, 1.0),
                RegionSpec::new("init_x", 1, WorkKind::Init, 1.0),
                RegionSpec::new("matvec_q", 200, WorkKind::SparseMv, 1.0),
                RegionSpec::new("dot_pq", 200, WorkKind::Norm, 1.0),
                RegionSpec::new("axpy_z", 200, WorkKind::Axpy, 1.0),
                RegionSpec::new("axpy_r", 200, WorkKind::Axpy, 1.0),
                RegionSpec::new("dot_rr", 200, WorkKind::Norm, 1.0),
                RegionSpec::new("beta_p", 200, WorkKind::Axpy, 1.0),
                RegionSpec::new("matvec_r", 200, WorkKind::SparseMv, 1.0),
                RegionSpec::new("norm_tmp1", 200, WorkKind::Norm, 1.0),
                RegionSpec::new("norm_tmp2", 200, WorkKind::Norm, 1.0),
                RegionSpec::new("scale_z", 200, WorkKind::Axpy, 1.0),
                RegionSpec::new("norm_resid", 70, WorkKind::Norm, 1.0),
                RegionSpec::new("scale_x", 70, WorkKind::Axpy, 1.0),
                RegionSpec::new("dot_xz", 70, WorkKind::Norm, 1.0),
            ],
        )
    }

    /// LU-HP: LU with hyperplane wavefronts — 16 regions, 298 959 calls.
    /// The hyperplane formulation turns every wavefront slice into its own
    /// (tiny) parallel region, which is why it has by far the most region
    /// calls and the highest collection overhead in the paper.
    pub fn lu_hp() -> NpbKernel {
        let mut specs = vec![
            RegionSpec::new("init_u", 1, WorkKind::Init, 1.0),
            RegionSpec::new("init_rhs", 1, WorkKind::Init, 1.0),
        ];
        const HP_TAGS: [&str; 13] = [
            "jacld_hp1",
            "blts_hp1",
            "jacld_hp2",
            "blts_hp2",
            "jacu_hp1",
            "buts_hp1",
            "jacu_hp2",
            "buts_hp2",
            "rhs_hp1",
            "rhs_hp2",
            "rhs_hp3",
            "rhs_hp4",
            "add_hp",
        ];
        for tag in HP_TAGS {
            specs.push(RegionSpec::new(tag, 22_996, WorkKind::Wavefront, 0.03125));
        }
        specs.push(RegionSpec::new("final_norm", 9, WorkKind::Norm, 1.0));
        Self::build("LU-HP", specs)
    }

    /// LU: LU with the pipelined formulation — 9 regions, 518 calls.
    pub fn lu() -> NpbKernel {
        Self::build(
            "LU",
            vec![
                RegionSpec::new("init_u", 1, WorkKind::Init, 1.0),
                RegionSpec::new("init_rhs", 1, WorkKind::Init, 1.0),
                RegionSpec::new("jacld_blts", 85, WorkKind::LineSolve, 1.0),
                RegionSpec::new("jacu_buts", 85, WorkKind::LineSolve, 1.0),
                RegionSpec::new("rhs", 85, WorkKind::Stencil, 1.0),
                RegionSpec::new("rhs_x", 85, WorkKind::Stencil, 1.0),
                RegionSpec::new("rhs_y", 85, WorkKind::Stencil, 1.0),
                RegionSpec::new("add", 85, WorkKind::Axpy, 1.0),
                RegionSpec::new("norms", 6, WorkKind::Norm, 1.0),
            ],
        )
    }

    /// All eight NPB3.2-OMP kernels, in Table I order.
    pub fn all() -> Vec<NpbKernel> {
        vec![
            Self::bt(),
            Self::ep(),
            Self::sp(),
            Self::mg(),
            Self::ft(),
            Self::cg(),
            Self::lu_hp(),
            Self::lu(),
        ]
    }

    /// Number of distinct parallel regions (Table I column 2).
    pub fn region_count(&self) -> usize {
        self.specs.len()
    }

    /// Total region calls at `class` (Table I column 3 at `Bsim`).
    pub fn region_calls(&self, class: NpbClass) -> u64 {
        self.specs.iter().map(|s| s.calls(class)).sum()
    }

    /// The region specs (for reports).
    pub fn specs(&self) -> &[RegionSpec] {
        &self.specs
    }

    /// Whether this kernel's checksum is invariant across thread counts.
    /// True for every kernel whose reductions sum the same values in any
    /// partition; false for LU-HP, whose wavefront chains are carried
    /// per-thread.
    pub fn is_deterministic(&self) -> bool {
        self.name != "LU-HP"
    }

    /// NPB-style self-verification: run at `threads` threads and compare
    /// the checksum against a fresh single-thread reference run.
    pub fn verify(&self, threads: usize, class: NpbClass) -> Verification {
        if !self.is_deterministic() {
            return Verification::NotApplicable;
        }
        let reference = {
            let rt = OpenMp::with_threads(1);
            self.run(&rt, class)
        };
        let got = {
            let rt = OpenMp::with_threads(threads);
            self.run(&rt, class)
        };
        let scale = reference.abs().max(1e-30);
        let rel_error = ((got - reference) / scale).abs();
        if rel_error < 1e-9 {
            Verification::Successful { rel_error }
        } else {
            Verification::Failed {
                expected: reference,
                got,
            }
        }
    }

    /// Execute the kernel on `rt` at `class`; returns a checksum (so the
    /// work cannot be optimized away) — deterministic for a given
    /// (class, thread count is irrelevant to the sums used).
    pub fn run(&self, rt: &OpenMp, class: NpbClass) -> f64 {
        let base_n = class.array_len();
        let max_n = self
            .specs
            .iter()
            .map(|s| (base_n as f64 * s.size_factor) as usize)
            .max()
            .unwrap_or(base_n)
            .max(base_n);
        let u = SharedVec::zeros(max_n);
        let v = SharedVec::zeros(max_n);
        let checksum = AtomicU64::new(0f64.to_bits());

        for (spec, handle) in self.specs.iter().zip(&self.handles) {
            let n = ((base_n as f64 * spec.size_factor) as usize).max(32);
            for call in 0..spec.calls(class) {
                run_region(rt, handle, spec.work, &u, &v, n, call, &checksum);
            }
        }
        f64::from_bits(checksum.load(Ordering::Relaxed))
    }
}

#[allow(clippy::too_many_arguments)]
fn run_region(
    rt: &OpenMp,
    handle: &RegionHandle,
    work: WorkKind,
    u: &SharedVec,
    v: &SharedVec,
    n: usize,
    call: u64,
    checksum: &AtomicU64,
) {
    let hi = n as i64 - 1;
    match work {
        WorkKind::Init => rt.parallel_region(handle, |ctx| {
            ctx.for_each(0, hi, |i| unsafe {
                let x = i as f64 + call as f64 * 0.5;
                u.set(i as usize, (x * 1e-3).sin() + 1.0);
            });
        }),
        WorkKind::Stencil => rt.parallel_region(handle, |ctx| {
            ctx.for_each(0, hi, |i| unsafe {
                let i = i as usize;
                let left = u.get(i.saturating_sub(1));
                let right = u.get((i + 1).min(n - 1));
                v.set(i, 0.25 * (left + 2.0 * u.get(i) + right));
            });
            ctx.implicit_barrier();
            ctx.for_each(0, hi, |i| unsafe {
                u.set(i as usize, v.get(i as usize));
            });
        }),
        WorkKind::LineSolve => rt.parallel_region(handle, |ctx| {
            // Rows of 32 elements: dependencies within a row, rows shared.
            let rows = (n / 32).max(1) as i64;
            ctx.for_each(0, rows - 1, |row| unsafe {
                let base = row as usize * 32;
                let mut acc = u.get(base);
                for k in 1..32.min(n - base) {
                    acc = 0.5 * acc + u.get(base + k);
                    u.set(base + k, acc);
                }
            });
        }),
        WorkKind::Axpy => rt.parallel_region(handle, |ctx| {
            ctx.for_each(0, hi, |i| unsafe {
                let i = i as usize;
                u.set(i, u.get(i) + 0.5 * v.get(i));
            });
        }),
        WorkKind::Norm => {
            let acc = AtomicU64::new(0f64.to_bits());
            rt.parallel_region(handle, |ctx| {
                let mut local = 0.0;
                ctx.for_each(0, hi, |i| unsafe {
                    let x = u.get(i as usize);
                    local += x * x;
                });
                ctx.reduction(|| {
                    let cur = f64::from_bits(acc.load(Ordering::Relaxed));
                    acc.store((cur + local).to_bits(), Ordering::Relaxed);
                });
            });
            let norm = f64::from_bits(acc.load(Ordering::Relaxed));
            let cur = f64::from_bits(checksum.load(Ordering::Relaxed));
            checksum.store((cur + norm.sqrt() * 1e-6).to_bits(), Ordering::Relaxed);
        }
        WorkKind::Random => {
            // EP: count pseudo-random points in the unit circle.
            let hits = AtomicU64::new(0);
            rt.parallel_region(handle, |ctx| {
                let mut local = 0u64;
                ctx.for_each(0, hi, |i| {
                    let mut s = (i as u64 + 1)
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(call);
                    s ^= s >> 33;
                    let x = (s & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
                    s = s.wrapping_mul(0x2545F4914F6CDD1D);
                    let y = (s >> 32) as f64 / u32::MAX as f64;
                    if x * x + y * y <= 1.0 {
                        local += 1;
                    }
                });
                ctx.atomic_update(&hits, |h| h + local);
            });
            let cur = f64::from_bits(checksum.load(Ordering::Relaxed));
            checksum.store(
                (cur + hits.load(Ordering::Relaxed) as f64 * 1e-9).to_bits(),
                Ordering::Relaxed,
            );
        }
        WorkKind::Dft => rt.parallel_region(handle, |ctx| {
            ctx.for_each(0, hi, |i| unsafe {
                let i = i as usize;
                let x = u.get(i);
                let tw = (i as f64 * 0.01).sin();
                v.set(i, x * tw + u.get((i + n / 2) % n) * (1.0 - tw));
            });
            ctx.implicit_barrier();
            ctx.for_each(0, hi, |i| unsafe {
                u.set(i as usize, v.get(i as usize));
            });
        }),
        WorkKind::SparseMv => rt.parallel_region(handle, |ctx| {
            ctx.for_each(0, hi, |i| unsafe {
                let i = i as usize;
                let mut acc = 0.0;
                for j in 0..4usize {
                    acc += u.get((i * 7 + j * 13) % n) * 0.25;
                }
                v.set(i, acc);
            });
        }),
        WorkKind::Wavefront => rt.parallel_region(handle, |ctx| {
            // Hyperplane slice: a dependent chain carried through the
            // thread's own iterations (cross-thread dependencies are what
            // the per-hyperplane *regions* express, not in-region reads).
            let mut prev = 1.0f64;
            ctx.for_each(0, hi, |i| unsafe {
                let i = i as usize;
                let x = 0.99 * u.get(i) + 0.01 * prev;
                u.set(i, x);
                prev = x;
            });
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper.
    const TABLE_I: [(&str, usize, u64); 8] = [
        ("BT", 11, 1_014),
        ("EP", 3, 3),
        ("SP", 14, 3_618),
        ("MG", 10, 1_281),
        ("FT", 9, 112),
        ("CG", 15, 2_212),
        ("LU-HP", 16, 298_959),
        ("LU", 9, 518),
    ];

    #[test]
    fn kernel_structure_matches_table_1_exactly() {
        for (kernel, &(name, regions, calls)) in NpbKernel::all().iter().zip(TABLE_I.iter()) {
            assert_eq!(kernel.name, name);
            assert_eq!(kernel.region_count(), regions, "{name} region count");
            assert_eq!(
                kernel.region_calls(NpbClass::Bsim),
                calls,
                "{name} region calls"
            );
        }
    }

    #[test]
    fn class_scaling_preserves_structure() {
        for kernel in NpbKernel::all() {
            let b = kernel.region_calls(NpbClass::Bsim);
            let w = kernel.region_calls(NpbClass::W);
            let s = kernel.region_calls(NpbClass::S);
            assert!(s <= w && w <= b, "{}", kernel.name);
            assert!(s >= kernel.region_count() as u64, "every region runs");
            assert_eq!(kernel.region_count(), kernel.specs().len());
        }
    }

    #[test]
    fn ep_runs_and_checksums() {
        let rt = OpenMp::with_threads(2);
        let k = NpbKernel::ep();
        let c1 = k.run(&rt, NpbClass::S);
        assert!(c1.is_finite() && c1 > 0.0);
    }

    #[test]
    fn kernels_run_at_class_s_with_fork_counts_matching_structure() {
        let rt = OpenMp::with_threads(2);
        for kernel in [NpbKernel::bt(), NpbKernel::cg(), NpbKernel::ft()] {
            let before = rt.region_calls();
            let sum = kernel.run(&rt, NpbClass::S);
            assert!(sum.is_finite(), "{}", kernel.name);
            let forked = rt.region_calls() - before;
            assert_eq!(forked, kernel.region_calls(NpbClass::S), "{}", kernel.name);
        }
    }

    #[test]
    fn verification_succeeds_for_deterministic_kernels() {
        for kernel in [NpbKernel::ep(), NpbKernel::cg(), NpbKernel::mg()] {
            match kernel.verify(3, NpbClass::S) {
                Verification::Successful { rel_error } => {
                    assert!(rel_error < 1e-9, "{}: {rel_error}", kernel.name)
                }
                other => panic!("{}: {other:?}", kernel.name),
            }
        }
    }

    #[test]
    fn lu_hp_verification_is_not_applicable() {
        assert_eq!(
            NpbKernel::lu_hp().verify(2, NpbClass::S),
            Verification::NotApplicable
        );
        assert!(!NpbKernel::lu_hp().is_deterministic());
        assert!(NpbKernel::bt().is_deterministic());
    }

    #[test]
    fn checksums_are_deterministic_across_thread_counts() {
        // Norm and Random reductions are order-insensitive sums of the
        // same values, so 1-thread and 4-thread runs agree closely.
        let k = NpbKernel::ft();
        let rt1 = OpenMp::with_threads(1);
        let rt4 = OpenMp::with_threads(4);
        let a = k.run(&rt1, NpbClass::S);
        let b = k.run(&rt4, NpbClass::S);
        let rel = ((a - b) / a.max(1e-12)).abs();
        assert!(rel < 1e-6, "a={a} b={b}");
    }
}
