//! The scenario grammar and its declarative case-file format.
//!
//! A [`Scenario`] is a small region program: a team size, a nesting
//! mode, and a sequence of [`Op`]s that every thread of one parallel
//! region executes in lockstep. The grammar deliberately covers every
//! construct whose runtime implementation PR 5 rewrote — worksharing
//! under all four schedules, reductions, critical/lock mutual
//! exclusion, ordered sections, single/master, barriers — plus
//! pause/resume gating of the collector, nested parallel regions, and
//! the explicit-task constructs (floods, single-producer steals, and
//! nested task trees) running on the work-stealing pool.
//!
//! Each op has a closed-form sequential result (see
//! [`crate::oracle`]); the differential harness executes the same ops
//! under the runtime and every collector rung and diffs the computed
//! values. Scenarios serialize to a line-based case file so fuzz-found
//! bugs land in `tests/fuzz_cases/` as readable, replayable
//! regressions.

use std::fmt;

/// A worksharing schedule, mirroring `omprt::Schedule` but owned by the
/// grammar so case files parse without the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedSpec {
    /// `static` — one contiguous block per thread.
    StaticEven,
    /// `chunk <n>` — round-robin blocks of `n`.
    StaticChunk(i64),
    /// `dynamic <n>` — runtime claiming, chunk `n` (batched claimer).
    Dynamic(i64),
    /// `guided <n>` — shrinking chunks, minimum `n`.
    Guided(i64),
}

impl SchedSpec {
    /// Convert into the runtime's schedule type.
    pub fn to_schedule(self) -> omprt::Schedule {
        match self {
            SchedSpec::StaticEven => omprt::Schedule::StaticEven,
            SchedSpec::StaticChunk(n) => omprt::Schedule::StaticChunk(n as usize),
            SchedSpec::Dynamic(n) => omprt::Schedule::Dynamic(n as usize),
            SchedSpec::Guided(n) => omprt::Schedule::Guided(n as usize),
        }
    }
}

impl fmt::Display for SchedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedSpec::StaticEven => write!(f, "static"),
            SchedSpec::StaticChunk(n) => write!(f, "chunk {n}"),
            SchedSpec::Dynamic(n) => write!(f, "dynamic {n}"),
            SchedSpec::Guided(n) => write!(f, "guided {n}"),
        }
    }
}

/// One construct of a scenario. All counts are iteration/round counts
/// over `0..count`; every op leaves one `i64` result slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Worksharing loop under `sched`: atomic sum of `mix(i)`.
    For { sched: SchedSpec, count: i64 },
    /// Worksharing sum reduction of `i % 97` (exact in f64).
    ReduceSum { count: i64 },
    /// Worksharing min reduction of `mix_small(i)`.
    ReduceMin { count: i64 },
    /// Worksharing max reduction of `mix_small(i)`.
    ReduceMax { count: i64 },
    /// Ordered worksharing loop: order-sensitive rolling hash of `i`.
    Ordered { count: i64 },
    /// Named critical region: `rounds` unsynchronized read-modify-write
    /// increments per thread, protected only by the critical lock.
    Critical { rounds: i64 },
    /// User lock (`OmpLock`): same lost-update probe as `Critical`.
    Lock { rounds: i64 },
    /// `atomic_update` increments: `rounds` per thread.
    Atomic { rounds: i64 },
    /// `rounds` encounters of `single`, one increment per encounter.
    Single { rounds: i64 },
    /// `rounds` master-only increments.
    Master { rounds: i64 },
    /// An explicit team barrier.
    Barrier,
    /// Collector pause/resume round trip on the master (only on rungs
    /// where collection is STARTed; a no-op otherwise).
    Gate,
    /// Master forks a nested region of `threads` threads which sums
    /// `mix(i)` over `0..count` (serialized unless `Scenario::nested`).
    NestedPar { threads: usize, count: i64 },
    /// Master forks a chain of `depth` nested regions of `threads`
    /// threads each (only the inner master recurses) and folds every
    /// member's `level`/`thread_num` into the result, asserting the
    /// parent-region-ID chain along the way. Under `Scenario::nested`
    /// each link is a real sub-team (leased from the worker pool);
    /// serialized, each link is a 1-thread region that keeps the outer
    /// region ID but still increments the level. Capped at `threads`
    /// 4 × `depth` 2.
    NestedTeam { threads: usize, depth: usize },
    /// Every thread spawns `count` explicit tasks summing `mix(i)`,
    /// then taskwaits. Tied tasks stay on their spawner's deque;
    /// untied ones are fair game for thieves.
    TaskFlood { count: i64, untied: bool },
    /// Master alone spawns `count` untied tasks while the whole team
    /// taskwaits — the steal-heavy shape.
    TaskProducer { count: i64 },
    /// Master grows a task tree through nested scoped spawns: every
    /// node spawns `fanout` children down to `depth` levels, with
    /// tied/untied alternating by level (both capped at 3).
    TaskTree { fanout: usize, depth: usize },
}

/// A complete generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Outer team size.
    pub threads: usize,
    /// Whether nested regions fork real sub-teams (`Config::nested`).
    pub nested: bool,
    /// The runtime's default schedule (used by reductions' `for_each`).
    pub schedule: SchedSpec,
    /// The ops, executed in order by every team thread.
    pub ops: Vec<Op>,
}

/// The deterministic per-iteration payload: cheap, wrapping, and
/// value-dependent so misattributed iterations change the result.
#[inline]
pub fn mix(i: i64) -> i64 {
    i.wrapping_mul(i).wrapping_add(i.rotate_left(7)) ^ 0x5bd1_e995
}

/// A small-range payload for min/max reductions (exact as f64).
#[inline]
pub fn mix_small(i: i64) -> i64 {
    (i.wrapping_mul(31).rem_euclid(1009)) - 500
}

impl Scenario {
    /// Serialize to the case-file format (round-trips via [`parse`]).
    ///
    /// [`parse`]: Scenario::parse
    pub fn to_case_file(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "threads {}", self.threads);
        let _ = writeln!(out, "nested {}", self.nested);
        let _ = writeln!(out, "schedule {}", self.schedule);
        for op in &self.ops {
            let _ = match op {
                Op::For { sched, count } => writeln!(out, "for {sched} {count}"),
                Op::ReduceSum { count } => writeln!(out, "reduce sum {count}"),
                Op::ReduceMin { count } => writeln!(out, "reduce min {count}"),
                Op::ReduceMax { count } => writeln!(out, "reduce max {count}"),
                Op::Ordered { count } => writeln!(out, "ordered {count}"),
                Op::Critical { rounds } => writeln!(out, "critical {rounds}"),
                Op::Lock { rounds } => writeln!(out, "lock {rounds}"),
                Op::Atomic { rounds } => writeln!(out, "atomic {rounds}"),
                Op::Single { rounds } => writeln!(out, "single {rounds}"),
                Op::Master { rounds } => writeln!(out, "master {rounds}"),
                Op::Barrier => writeln!(out, "barrier"),
                Op::Gate => writeln!(out, "gate"),
                Op::NestedPar { threads, count } => writeln!(out, "nestedpar {threads} {count}"),
                Op::NestedTeam { threads, depth } => {
                    writeln!(out, "nested_team {threads} {depth}")
                }
                Op::TaskFlood { count, untied } => {
                    writeln!(
                        out,
                        "task_flood {count} {}",
                        if *untied { "untied" } else { "tied" }
                    )
                }
                Op::TaskProducer { count } => writeln!(out, "task_producer {count}"),
                Op::TaskTree { fanout, depth } => writeln!(out, "task_tree {fanout} {depth}"),
            };
        }
        out
    }

    /// Parse a case file. Blank lines and `#` comments are ignored.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut threads = None;
        let mut nested = false;
        let mut schedule = SchedSpec::StaticEven;
        let mut ops = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
            let fields: Vec<&str> = line.split_whitespace().collect();
            let int = |s: &str| s.parse::<i64>().map_err(|_| err("bad integer"));
            let positive = |s: &str| {
                let v = int(s)?;
                if v < 1 {
                    return Err(err("count must be >= 1"));
                }
                Ok(v)
            };
            match fields[0] {
                "threads" if fields.len() == 2 => {
                    threads = Some(positive(fields[1])? as usize);
                }
                "nested" if fields.len() == 2 => {
                    nested = match fields[1] {
                        "true" => true,
                        "false" => false,
                        _ => return Err(err("expected true/false")),
                    };
                }
                "schedule" => {
                    schedule = parse_sched(&fields[1..]).ok_or_else(|| err("bad schedule"))?
                }
                "for" if fields.len() >= 3 => {
                    let sched = parse_sched(&fields[1..fields.len() - 1])
                        .ok_or_else(|| err("bad schedule"))?;
                    ops.push(Op::For {
                        sched,
                        count: positive(fields[fields.len() - 1])?,
                    });
                }
                "reduce" if fields.len() == 3 => {
                    let count = positive(fields[2])?;
                    ops.push(match fields[1] {
                        "sum" => Op::ReduceSum { count },
                        "min" => Op::ReduceMin { count },
                        "max" => Op::ReduceMax { count },
                        _ => return Err(err("expected sum/min/max")),
                    });
                }
                "ordered" if fields.len() == 2 => ops.push(Op::Ordered {
                    count: positive(fields[1])?,
                }),
                "critical" if fields.len() == 2 => ops.push(Op::Critical {
                    rounds: positive(fields[1])?,
                }),
                "lock" if fields.len() == 2 => ops.push(Op::Lock {
                    rounds: positive(fields[1])?,
                }),
                "atomic" if fields.len() == 2 => ops.push(Op::Atomic {
                    rounds: positive(fields[1])?,
                }),
                "single" if fields.len() == 2 => ops.push(Op::Single {
                    rounds: positive(fields[1])?,
                }),
                "master" if fields.len() == 2 => ops.push(Op::Master {
                    rounds: positive(fields[1])?,
                }),
                "barrier" if fields.len() == 1 => ops.push(Op::Barrier),
                "gate" if fields.len() == 1 => ops.push(Op::Gate),
                "nestedpar" if fields.len() == 3 => ops.push(Op::NestedPar {
                    threads: positive(fields[1])? as usize,
                    count: positive(fields[2])?,
                }),
                "nested_team" if fields.len() == 3 => {
                    let threads = positive(fields[1])?;
                    let depth = positive(fields[2])?;
                    if threads > 4 || depth > 2 {
                        return Err(err("nested_team is capped at threads 4, depth 2"));
                    }
                    ops.push(Op::NestedTeam {
                        threads: threads as usize,
                        depth: depth as usize,
                    });
                }
                "task_flood" if fields.len() == 3 => {
                    let count = positive(fields[1])?;
                    let untied = match fields[2] {
                        "tied" => false,
                        "untied" => true,
                        _ => return Err(err("expected tied/untied")),
                    };
                    ops.push(Op::TaskFlood { count, untied });
                }
                "task_producer" if fields.len() == 2 => ops.push(Op::TaskProducer {
                    count: positive(fields[1])?,
                }),
                "task_tree" if fields.len() == 3 => {
                    let fanout = positive(fields[1])?;
                    let depth = positive(fields[2])?;
                    if fanout > 3 || depth > 3 {
                        return Err(err("task_tree is capped at fanout 3, depth 3"));
                    }
                    ops.push(Op::TaskTree {
                        fanout: fanout as usize,
                        depth: depth as usize,
                    });
                }
                _ => return Err(err("unknown directive")),
            }
        }
        Ok(Scenario {
            threads: threads.ok_or("missing `threads` directive")?,
            nested,
            schedule,
            ops,
        })
    }

    /// How many `gate` ops the scenario contains (relaxes the trace
    /// pairing checks: a pause window can swallow in-flight events).
    pub fn gates(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Gate)).count()
    }
}

fn parse_sched(fields: &[&str]) -> Option<SchedSpec> {
    match fields {
        ["static"] => Some(SchedSpec::StaticEven),
        ["chunk", n] => Some(SchedSpec::StaticChunk(n.parse().ok().filter(|v| *v >= 1)?)),
        ["dynamic", n] => Some(SchedSpec::Dynamic(n.parse().ok().filter(|v| *v >= 1)?)),
        ["guided", n] => Some(SchedSpec::Guided(n.parse().ok().filter(|v| *v >= 1)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            threads: 3,
            nested: true,
            schedule: SchedSpec::Dynamic(2),
            ops: vec![
                Op::For {
                    sched: SchedSpec::Guided(1),
                    count: 17,
                },
                Op::ReduceSum { count: 100 },
                Op::Ordered { count: 9 },
                Op::Critical { rounds: 8 },
                Op::Lock { rounds: 5 },
                Op::Atomic { rounds: 16 },
                Op::Single { rounds: 6 },
                Op::Master { rounds: 2 },
                Op::Barrier,
                Op::Gate,
                Op::NestedPar {
                    threads: 2,
                    count: 12,
                },
                Op::NestedTeam {
                    threads: 3,
                    depth: 2,
                },
                Op::ReduceMin { count: 7 },
                Op::ReduceMax { count: 7 },
                Op::TaskFlood {
                    count: 257,
                    untied: true,
                },
                Op::TaskFlood {
                    count: 3,
                    untied: false,
                },
                Op::TaskProducer { count: 40 },
                Op::TaskTree {
                    fanout: 2,
                    depth: 3,
                },
            ],
        }
    }

    #[test]
    fn case_file_round_trips() {
        let s = sample();
        let text = s.to_case_file();
        let parsed = Scenario::parse(&text).unwrap();
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_case_file(), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a regression\n\nthreads 2\n  # indented comment\nbarrier\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.threads, 2);
        assert_eq!(s.ops, vec![Op::Barrier]);
    }

    #[test]
    fn bad_inputs_are_rejected_with_line_numbers() {
        assert!(Scenario::parse("barrier").is_err()); // no threads
        let err = Scenario::parse("threads 2\nfor dynamic 0 10").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(Scenario::parse("threads 2\nordered -3").is_err());
        assert!(Scenario::parse("threads 2\nwat 1").is_err());
        assert!(Scenario::parse("threads 2\ntask_flood 5 sideways").is_err());
        assert!(Scenario::parse("threads 2\ntask_tree 4 2").is_err());
        assert!(Scenario::parse("threads 2\ntask_producer 0").is_err());
        assert!(Scenario::parse("threads 2\nnested_team 5 1").is_err());
        assert!(Scenario::parse("threads 2\nnested_team 2 3").is_err());
        assert!(Scenario::parse("threads 2\nnested_team 0 1").is_err());
    }

    #[test]
    fn gates_counts_gate_ops() {
        assert_eq!(sample().gates(), 1);
    }
}
