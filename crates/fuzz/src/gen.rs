//! The seeded scenario generator.
//!
//! Construct weights follow real-world OpenMP usage frequency
//! ("Quantifying OpenMP", arXiv 2308.08002): `parallel`/`for`/
//! reductions dominate, atomics and critical are common, `ordered`
//! and nested parallelism are the rare-but-buggy tail. Trip counts are
//! drawn from a pool biased toward the scheduler's edge cases — counts
//! smaller than the team, counts straddling the `Claimer` batch
//! (`BATCH_MAX * chunk * nthreads ± ε`), primes — because those are
//! where the PR-5 batched claiming and tail logic can break.

use ora_core::testutil::XorShift64;

use crate::scenario::{Op, Scenario, SchedSpec};

/// The claimer's largest per-thread batch (`omprt::schedule::BATCH_MAX`).
const BATCH_MAX: i64 = 8;

/// Per-thread deque capacity (`omprt::task::DEQUE_CAP`) — spawn counts
/// just around it force the overflow-spill path.
const DEQUE_CAP: i64 = 256;

/// Generate the scenario for `seed`. The same seed always yields the
/// same scenario, on every machine.
pub fn generate(seed: u64) -> Scenario {
    let mut rng = XorShift64::new(seed);
    // Team sizes: mostly small real teams, a tail of oversubscription.
    let threads = *rng.choose(&[1usize, 2, 2, 2, 3, 3, 4, 4, 4, 6, 8]);
    let nested = rng.chance(3, 20);
    let schedule = sched(&mut rng);
    let n_ops = rng.range_usize(2, 9);
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(op(&mut rng, threads));
    }
    Scenario {
        threads,
        nested,
        schedule,
        ops,
    }
}

fn sched(rng: &mut XorShift64) -> SchedSpec {
    let chunk = *rng.choose(&[1i64, 1, 2, 3, 5, 7]);
    match rng.below(30) {
        0..=9 => SchedSpec::StaticEven,
        10..=15 => SchedSpec::StaticChunk(chunk),
        16..=23 => SchedSpec::Dynamic(chunk),
        _ => SchedSpec::Guided(chunk),
    }
}

/// A trip count biased toward scheduler edge cases.
fn trip_count(rng: &mut XorShift64, threads: usize) -> i64 {
    let t = threads as i64;
    match rng.below(10) {
        // Tail: fewer iterations than threads (some threads get nothing).
        0..=2 => rng.range_i64(1, t + 1),
        // Straddling the claimer batch: BATCH_MAX * chunk * nthreads ± ε.
        3..=5 => {
            let chunk = *rng.choose(&[1i64, 2, 3, 5]);
            let base = BATCH_MAX * chunk * t;
            (base + rng.range_i64(-3, 4)).max(1)
        }
        // Primes — indivisible by everything.
        6..=7 => *rng.choose(&[7i64, 13, 31, 61, 127, 251, 509]),
        // Plain random.
        _ => rng.range_i64(1, 400),
    }
}

fn rounds(rng: &mut XorShift64) -> i64 {
    rng.range_i64(1, 17)
}

/// A task spawn count biased toward the deque-capacity cliff, where a
/// spawner must spill to the overflow queue (the task scheduler's
/// claimer-hostile edge).
fn task_count(rng: &mut XorShift64) -> i64 {
    match rng.below(10) {
        0..=2 => DEQUE_CAP + rng.range_i64(-1, 2), // 255 | 256 | 257
        3..=5 => rng.range_i64(1, 33),
        _ => rng.range_i64(1, 129),
    }
}

fn op(rng: &mut XorShift64, threads: usize) -> Op {
    let count = trip_count(rng, threads);
    // Weighted construct pick out of 100 (for/reduction dominate;
    // ordered/nested are the tail, per arXiv 2308.08002; explicit
    // tasks get a deliberate overweight while the work-stealing pool
    // is the newest subsystem).
    match rng.below(100) {
        0..=24 => Op::For {
            sched: sched(rng),
            count,
        },
        25..=36 => Op::ReduceSum { count },
        37..=40 => Op::ReduceMin { count },
        41..=44 => Op::ReduceMax { count },
        45..=50 => Op::Atomic {
            rounds: rounds(rng),
        },
        51..=55 => Op::Critical {
            rounds: rounds(rng),
        },
        56..=59 => Op::Single {
            rounds: rng.range_i64(1, 9),
        },
        60..=62 => Op::Barrier,
        63..=65 => Op::Master {
            rounds: rounds(rng),
        },
        66..=67 => Op::Lock {
            rounds: rounds(rng),
        },
        68..=73 => Op::Ordered {
            // Ordered serializes the loop; keep the tail biased small.
            count: rng.range_i64(1, 2 * threads as i64 + 30),
        },
        74..=76 => Op::Gate,
        77 => Op::NestedPar {
            threads: rng.range_usize(1, 4),
            count: rng.range_i64(1, 64),
        },
        78 => Op::NestedTeam {
            threads: rng.range_usize(1, 5),
            depth: rng.range_usize(1, 3),
        },
        79..=88 => Op::TaskFlood {
            count: task_count(rng),
            untied: rng.chance(1, 2),
        },
        89..=94 => Op::TaskProducer {
            count: task_count(rng),
        },
        _ => Op::TaskTree {
            fanout: rng.range_usize(1, 4),
            depth: rng.range_usize(1, 4),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in 0..50 {
            assert_eq!(generate(seed), generate(seed));
        }
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn generated_scenarios_round_trip_through_case_files() {
        for seed in 0..200 {
            let s = generate(seed);
            let parsed = Scenario::parse(&s.to_case_file()).unwrap();
            assert_eq!(parsed, s, "seed {seed}");
        }
    }

    #[test]
    fn generated_counts_are_valid() {
        for seed in 0..500 {
            let s = generate(seed);
            assert!(s.threads >= 1 && s.threads <= 8);
            assert!(!s.ops.is_empty());
            for op in &s.ops {
                match *op {
                    Op::For { count, .. }
                    | Op::ReduceSum { count }
                    | Op::ReduceMin { count }
                    | Op::ReduceMax { count }
                    | Op::Ordered { count }
                    | Op::NestedPar { count, .. } => assert!(count >= 1),
                    Op::Critical { rounds }
                    | Op::Lock { rounds }
                    | Op::Atomic { rounds }
                    | Op::Single { rounds }
                    | Op::Master { rounds } => assert!(rounds >= 1),
                    Op::TaskFlood { count, .. } | Op::TaskProducer { count } => {
                        assert!(count >= 1)
                    }
                    Op::TaskTree { fanout, depth } => {
                        assert!((1..=3).contains(&fanout) && (1..=3).contains(&depth))
                    }
                    Op::NestedTeam { threads, depth } => {
                        assert!((1..=4).contains(&threads) && (1..=2).contains(&depth))
                    }
                    Op::Barrier | Op::Gate => {}
                }
            }
        }
    }

    #[test]
    fn the_rare_tail_still_appears() {
        // Across many seeds the rare constructs must all be exercised.
        let mut ordered = 0;
        let mut nested = 0;
        let mut nested_teams = 0;
        let mut gates = 0;
        let mut trees = 0;
        let mut producers = 0;
        let mut cliff_floods = 0;
        for seed in 0..400 {
            for op in &generate(seed).ops {
                match op {
                    Op::Ordered { .. } => ordered += 1,
                    Op::NestedPar { .. } => nested += 1,
                    Op::NestedTeam { .. } => nested_teams += 1,
                    Op::Gate => gates += 1,
                    Op::TaskTree { .. } => trees += 1,
                    Op::TaskProducer { .. } => producers += 1,
                    Op::TaskFlood { count, .. } if (count - DEQUE_CAP).abs() <= 1 => {
                        cliff_floods += 1
                    }
                    _ => {}
                }
            }
        }
        assert!(ordered > 0, "ordered never generated");
        assert!(nested > 0, "nested parallel never generated");
        assert!(nested_teams > 0, "nested_team never generated");
        assert!(gates > 0, "gate never generated");
        assert!(trees > 0, "task trees never generated");
        assert!(producers > 0, "task producers never generated");
        assert!(cliff_floods > 0, "no flood near the deque-capacity cliff");
    }
}
