//! Greedy scenario shrinking.
//!
//! Given a failing scenario and a predicate that re-checks failure, the
//! minimizer repeatedly tries structural simplifications — dropping
//! ops, halving counts, shrinking the team — and keeps any change that
//! still fails. The result is the small, readable case file that lands
//! in `tests/fuzz_cases/`.
//!
//! Because the bugs this hunts are concurrency bugs, a single passing
//! run does not prove a candidate lost the failure; the predicate is
//! expected to retry internally (see [`fails_with_retries`]).

use collector::modes::CollectionConfig;

use crate::diff::{check_scenario, check_scenario_rungs};
use crate::scenario::{Op, Scenario};

/// Re-check `scenario` up to `tries` times; true if any run fails.
/// This is the predicate most callers want: concurrency failures are
/// flaky, so a shrink candidate only counts as "still failing" if the
/// failure reproduces within the retry budget.
pub fn fails_with_retries(scenario: &Scenario, tries: usize) -> bool {
    (0..tries.max(1)).any(|_| !check_scenario(scenario).is_empty())
}

/// [`fails_with_retries`] restricted to a rung subset, so a failure
/// found by a single-rung sweep (`fuzz --rungs governed`) minimizes
/// against the same rungs that caught it.
pub fn fails_with_retries_on(
    scenario: &Scenario,
    rungs: &[CollectionConfig],
    tries: usize,
) -> bool {
    (0..tries.max(1)).any(|_| !check_scenario_rungs(scenario, rungs).is_empty())
}

/// Shrink `scenario` while `fails` keeps returning true. Returns the
/// smallest still-failing scenario found (possibly the input itself).
pub fn minimize(scenario: &Scenario, mut fails: impl FnMut(&Scenario) -> bool) -> Scenario {
    let mut best = scenario.clone();
    let mut progress = true;
    while progress {
        progress = false;

        // 1. Drop whole ops, one at a time (scan from the end so the
        //    indices of not-yet-tried ops stay stable after a removal).
        let mut i = best.ops.len();
        while i > 0 {
            i -= 1;
            if best.ops.len() == 1 {
                break;
            }
            let mut cand = best.clone();
            cand.ops.remove(i);
            if fails(&cand) {
                best = cand;
                progress = true;
            }
        }

        // 2. Shrink counts: halve, then try 1.
        for i in 0..best.ops.len() {
            for target in [half_count(&best.ops[i]), set_count(&best.ops[i], 1)] {
                let Some(op) = target else { continue };
                if op == best.ops[i] {
                    continue;
                }
                let mut cand = best.clone();
                cand.ops[i] = op;
                if fails(&cand) {
                    best = cand;
                    progress = true;
                }
            }
        }

        // 3. Shrink the team and simplify the modes.
        if best.threads > 1 {
            let mut cand = best.clone();
            cand.threads = (best.threads / 2).max(1);
            if fails(&cand) {
                best = cand;
                progress = true;
            }
        }
        if best.nested {
            let mut cand = best.clone();
            cand.nested = false;
            if fails(&cand) {
                best = cand;
                progress = true;
            }
        }
    }
    best
}

fn half_count(op: &Op) -> Option<Op> {
    set_count(op, count_of(op)? / 2)
}

fn count_of(op: &Op) -> Option<i64> {
    match *op {
        Op::For { count, .. }
        | Op::ReduceSum { count }
        | Op::ReduceMin { count }
        | Op::ReduceMax { count }
        | Op::Ordered { count }
        | Op::NestedPar { count, .. } => Some(count),
        Op::Critical { rounds }
        | Op::Lock { rounds }
        | Op::Atomic { rounds }
        | Op::Single { rounds }
        | Op::Master { rounds } => Some(rounds),
        Op::TaskFlood { count, .. } | Op::TaskProducer { count } => Some(count),
        // Trees shrink on depth: halving the node count directly would
        // not stay in the fanout^depth family.
        Op::TaskTree { depth, .. } => Some(depth as i64),
        // Nested chains shrink on the sub-team size; depth is already 1
        // or 2 and shrinks implicitly when threads hits 1.
        Op::NestedTeam { threads, .. } => Some(threads as i64),
        Op::Barrier | Op::Gate => None,
    }
}

fn set_count(op: &Op, n: i64) -> Option<Op> {
    let n = n.max(1);
    Some(match *op {
        Op::For { sched, .. } => Op::For { sched, count: n },
        Op::ReduceSum { .. } => Op::ReduceSum { count: n },
        Op::ReduceMin { .. } => Op::ReduceMin { count: n },
        Op::ReduceMax { .. } => Op::ReduceMax { count: n },
        Op::Ordered { .. } => Op::Ordered { count: n },
        Op::NestedPar { threads, .. } => Op::NestedPar { threads, count: n },
        Op::Critical { .. } => Op::Critical { rounds: n },
        Op::Lock { .. } => Op::Lock { rounds: n },
        Op::Atomic { .. } => Op::Atomic { rounds: n },
        Op::Single { .. } => Op::Single { rounds: n },
        Op::Master { .. } => Op::Master { rounds: n },
        Op::TaskFlood { untied, .. } => Op::TaskFlood { count: n, untied },
        Op::TaskProducer { .. } => Op::TaskProducer { count: n },
        Op::TaskTree { fanout, .. } => Op::TaskTree {
            fanout,
            depth: (n as usize).min(3),
        },
        Op::NestedTeam { depth, .. } => Op::NestedTeam {
            threads: (n as usize).min(4),
            depth,
        },
        Op::Barrier | Op::Gate => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SchedSpec;

    fn big() -> Scenario {
        Scenario {
            threads: 8,
            nested: true,
            schedule: SchedSpec::StaticEven,
            ops: vec![
                Op::Barrier,
                Op::For {
                    sched: SchedSpec::Dynamic(3),
                    count: 200,
                },
                Op::Critical { rounds: 16 },
                Op::Ordered { count: 40 },
                Op::Gate,
            ],
        }
    }

    #[test]
    fn minimize_reaches_the_smallest_failing_shape() {
        // Synthetic failure: anything containing a dynamic `for` fails.
        let fails = |s: &Scenario| {
            s.ops.iter().any(|o| {
                matches!(
                    o,
                    Op::For {
                        sched: SchedSpec::Dynamic(_),
                        ..
                    }
                )
            })
        };
        let m = minimize(&big(), fails);
        assert_eq!(m.threads, 1);
        assert!(!m.nested);
        assert_eq!(m.ops.len(), 1);
        assert!(matches!(
            m.ops[0],
            Op::For {
                sched: SchedSpec::Dynamic(_),
                count: 1
            }
        ));
    }

    #[test]
    fn minimize_never_returns_a_passing_scenario() {
        // Failure depends on total op count staying >= 3.
        let fails = |s: &Scenario| s.ops.len() >= 3;
        let m = minimize(&big(), fails);
        assert!(fails(&m));
        assert_eq!(m.ops.len(), 3);
    }

    #[test]
    fn minimize_keeps_an_always_failing_scenario_nonempty() {
        let m = minimize(&big(), |_| true);
        assert_eq!(m.ops.len(), 1);
        assert_eq!(m.threads, 1);
    }
}
