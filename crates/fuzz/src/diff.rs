//! The diff surface: everything the collector rungs must agree on.
//!
//! For one scenario the harness computes the sequential oracle, runs
//! the program under every [`CollectionConfig`] rung, and checks:
//!
//! 1. **Computed results** — per-op values equal the oracle on every
//!    rung (collectors must never perturb the application);
//! 2. **Final thread states** — the post-run probe region fields a
//!    full team and the runtime's fault counters are clean;
//! 3. **Rung invariants** — `Absent`/`RegisteredPaused` observe zero
//!    events, the started rungs observe work;
//! 4. **Trace accounting** (streaming rung) — callback counts, drain
//!    and drop counters, footer, per-thread and per-region partitions,
//!    event pairing, and multi-rank merge determinism all reconcile.
//!    The `governed` rung adds the sampling reconciliation: the
//!    governor's `observed == sampled + skipped` invariant, callbacks
//!    ran exactly for the sampled events, decision records round-trip
//!    through the trace, and sampling never breaks begin/end pairing.
//! 5. **Socket replay** (`socket` rung) — the streaming rung's trace
//!    bytes are re-framed into the producer's sink-write units and
//!    streamed through a loopback `ora-fleet` aggregator daemon; the
//!    daemon's merged store must match the offline merge byte for byte
//!    and its lane accounting must reconcile with the in-process chain.

use collector::modes::CollectionConfig;
use collector::tracer::Trace;
use ora_core::event::Event;
use ora_trace::{merge_ranks, TraceReader};

use crate::exec::{run_under, RunOutcome};
use crate::oracle;
use crate::scenario::Scenario;

/// One failed check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// The rung key (`absent`/`paused`/`state`/`trace`/`governed`/
    /// `socket`) or `harness`.
    pub rung: &'static str,
    /// What disagreed.
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rung, self.detail)
    }
}

/// Run `scenario` under every rung and collect every disagreement with
/// the oracle. Empty means the scenario passed.
pub fn check_scenario(scenario: &Scenario) -> Vec<Mismatch> {
    check_scenario_rungs(scenario, &CollectionConfig::ALL)
}

/// [`check_scenario`] restricted to a subset of rungs (the CLI's
/// `fuzz --rungs` flag — e.g. the nightly governed-only sweep).
pub fn check_scenario_rungs(scenario: &Scenario, rungs: &[CollectionConfig]) -> Vec<Mismatch> {
    let expected = oracle::expected(scenario);
    let mut mismatches = Vec::new();
    for &rung in rungs {
        let key = rung.key();
        match run_under(scenario, rung) {
            Ok(outcome) => {
                diff_outcome(scenario, &expected, rung, &outcome, &mut mismatches);
            }
            Err(e) => mismatches.push(Mismatch {
                rung: key,
                detail: format!("execution failed: {e}"),
            }),
        }
    }
    mismatches
}

fn diff_outcome(
    scenario: &Scenario,
    expected: &[i64],
    rung: CollectionConfig,
    outcome: &RunOutcome,
    out: &mut Vec<Mismatch>,
) {
    let key = rung.key();
    let mut push = |detail: String| out.push(Mismatch { rung: key, detail });

    // 1. Computed results, op by op.
    for (k, (got, want)) in outcome.results.iter().zip(expected).enumerate() {
        if got != want {
            push(format!(
                "op {k} ({:?}): computed {got}, oracle {want}",
                scenario.ops[k]
            ));
        }
    }

    // 2. Final thread states: full team in the probe region, clean
    //    fault counters.
    if outcome.post_threads != scenario.threads {
        push(format!(
            "post-run probe saw {} thread(s), expected {}",
            outcome.post_threads, scenario.threads
        ));
    }
    if outcome.health.faulted() {
        push(format!(
            "ApiHealth faulted: {} panic(s), {} quarantined, {} sequence error(s)",
            outcome.health.callback_panics,
            outcome.health.callbacks_quarantined,
            outcome.health.sequence_errors
        ));
    }

    // 3. Rung invariants.
    let s = &outcome.summary;
    match rung {
        CollectionConfig::Absent | CollectionConfig::RegisteredPaused => {
            if s.events_observed != 0 {
                push(format!(
                    "{} rung observed {} event(s); must be 0",
                    key, s.events_observed
                ));
            }
        }
        CollectionConfig::StateQueries => {
            if s.events_observed == 0 {
                push("state rung observed no threads".into());
            }
        }
        CollectionConfig::StreamingTrace => {
            if s.degraded {
                push("trace pipeline degraded".into());
            }
            if s.events_observed == 0 {
                push("trace rung observed no events".into());
            }
            if s.events_observed != s.records_drained + s.records_dropped {
                push(format!(
                    "event accounting: observed {} != drained {} + dropped {}",
                    s.events_observed, s.records_drained, s.records_dropped
                ));
            }
            match &outcome.trace {
                Some(bytes) => diff_trace(scenario, outcome, bytes, &mut push),
                None => push("trace rung returned no trace bytes".into()),
            }
        }
        CollectionConfig::Governed => {
            if s.degraded {
                push("governed trace pipeline degraded".into());
            }
            if s.events_observed == 0 {
                push("governed rung observed no events".into());
            }
            // Sampling reconciliation, from the quiescent status
            // snapshot: every monitored event was either sampled or
            // skipped, and callbacks ran exactly for the sampled ones.
            match &outcome.governor {
                None => push("governed rung captured no governor status".into()),
                Some(g) => {
                    if g.enabled != 1 {
                        push("governor was not armed on the governed rung".into());
                    }
                    if !g.reconciles() {
                        push(format!(
                            "governor accounting: observed {} != sampled {} + skipped {}",
                            g.events_observed, g.events_sampled, g.events_skipped
                        ));
                    }
                    if g.events_sampled != s.events_observed {
                        push(format!(
                            "governor sampled {} event(s) but callbacks observed {}",
                            g.events_sampled, s.events_observed
                        ));
                    }
                    if s.events_sampled != g.events_sampled || s.events_skipped != g.events_skipped
                    {
                        push(format!(
                            "summary sampling ({}/{}) disagrees with status ({}/{})",
                            s.events_sampled, s.events_skipped, g.events_sampled, g.events_skipped
                        ));
                    }
                }
            }
            // Record accounting: one record per sampled event plus the
            // decision log, nothing more.
            if s.events_observed + s.governor_records != s.records_drained + s.records_dropped {
                push(format!(
                    "governed accounting: observed {} + decisions {} != drained {} + dropped {}",
                    s.events_observed, s.governor_records, s.records_drained, s.records_dropped
                ));
            }
            match &outcome.trace {
                Some(bytes) => diff_governed_trace(scenario, outcome, bytes, &mut push),
                None => push("governed rung returned no trace bytes".into()),
            }
        }
    }

    // 5. Socket replay: stream the recorded bytes through a loopback
    //    aggregator daemon and diff its merged store (reported under
    //    its own `socket` rung key).
    if rung == CollectionConfig::StreamingTrace {
        if let Some(bytes) = &outcome.trace {
            diff_socket(outcome, bytes, out);
        }
    }
}

/// Reconcile the governed rung's persisted trace: the decision log
/// round-trips through the reader's governor timeline, decision records
/// stay out of the event stream, and — whatever sampling rates the
/// governor settled on — begin/end pairing survives intact (the fate
/// stack guarantees an end is sampled iff its begin was).
fn diff_governed_trace(
    scenario: &Scenario,
    outcome: &RunOutcome,
    bytes: &[u8],
    push: &mut impl FnMut(String),
) {
    let s = &outcome.summary;
    let reader = match TraceReader::from_bytes(bytes.to_vec()) {
        Ok(r) => r,
        Err(e) => return push(format!("governed trace does not decode: {e}")),
    };
    if reader.record_count() != s.records_drained {
        push(format!(
            "footer drained {} != summary drained {}",
            reader.record_count(),
            s.records_drained
        ));
    }
    if reader.dropped() != s.records_dropped {
        push(format!(
            "footer dropped {} != summary dropped {}",
            reader.dropped(),
            s.records_dropped
        ));
    }
    match reader.governor_timeline() {
        Ok(timeline) => {
            if timeline.len() as u64 != s.governor_records {
                push(format!(
                    "governor timeline has {} decision(s), summary persisted {}",
                    timeline.len(),
                    s.governor_records
                ));
            }
        }
        Err(e) => push(format!("governor timeline does not decode: {e}")),
    }
    let records = match reader.records() {
        Ok(r) => r,
        Err(e) => return push(format!("governed trace records do not decode: {e}")),
    };
    if records.len() as u64 + s.governor_records != s.records_drained {
        push(format!(
            "decoded {} event record(s) + {} decision(s) != drained {}",
            records.len(),
            s.governor_records,
            s.records_drained
        ));
    }

    // Pairing survives sampling: checkable when nothing was lost to
    // backpressure and no pause window could swallow one side.
    if s.records_dropped == 0 && scenario.gates() == 0 {
        let trace = match Trace::from_encoded(bytes) {
            Ok(t) => t,
            Err(e) => return push(format!("governed trace re-decode failed: {e}")),
        };
        if trace.count(Event::Fork) != trace.count(Event::Join) {
            push(format!(
                "sampled fork count {} != join count {}",
                trace.count(Event::Fork),
                trace.count(Event::Join)
            ));
        }
        if trace.count(Event::LoopBegin) != trace.count(Event::LoopEnd) {
            push(format!(
                "sampled loop begin count {} != loop end count {}",
                trace.count(Event::LoopBegin),
                trace.count(Event::LoopEnd)
            ));
        }
        for begin in [
            Event::ThreadBeginImplicitBarrier,
            Event::ThreadBeginExplicitBarrier,
            Event::ThreadBeginLockWait,
            Event::ThreadBeginCriticalWait,
            Event::ThreadBeginOrderedWait,
            Event::ThreadBeginMaster,
            Event::ThreadBeginSingle,
            Event::TaskBegin,
            Event::TaskWaitBegin,
        ] {
            let unmatched = trace.unmatched_begins(begin);
            if unmatched != 0 {
                push(format!(
                    "sampling broke pairing: {} unmatched {:?} interval(s)",
                    unmatched, begin
                ));
            }
        }
    }
}

/// Split a trace file back into the units the recorder's sink was
/// handed — the 8-byte header, each encoded chunk, the footer tail —
/// which is exactly what a `SocketSink` producer frames, one per epoch.
fn split_sink_units(bytes: &[u8]) -> Result<Vec<&[u8]>, String> {
    use ora_trace::format::TAG_CHUNK;
    if bytes.len() < 8 {
        return Err(format!(
            "trace is {} byte(s), shorter than a header",
            bytes.len()
        ));
    }
    let mut units = vec![&bytes[..8]];
    let mut pos = 8usize;
    while pos < bytes.len() && bytes[pos] == TAG_CHUNK {
        let start = pos;
        ora_trace::format::decode_chunk(bytes, &mut pos)
            .map_err(|e| format!("chunk at byte {start}: {e}"))?;
        units.push(&bytes[start..pos]);
    }
    if pos >= bytes.len() {
        return Err("trace has no footer tail".into());
    }
    units.push(&bytes[pos..]);
    Ok(units)
}

/// The socket rung: replay the trace through a loopback daemon and
/// check that online aggregation agrees with everything the in-process
/// chain established — stored records, drop accounting, and a merged
/// timeline byte-identical to the offline merge.
fn diff_socket(outcome: &RunOutcome, bytes: &[u8], out: &mut Vec<Mismatch>) {
    use ora_fleet::{timeline_bytes, Daemon, DaemonConfig, SocketSink};
    use ora_trace::TraceSink;

    let mut push = |detail: String| {
        out.push(Mismatch {
            rung: "socket",
            detail,
        })
    };
    let s = &outcome.summary;
    let units = match split_sink_units(bytes) {
        Ok(u) => u,
        Err(e) => return push(format!("cannot re-frame trace: {e}")),
    };
    let (client, server) = match ora_fleet::loopback() {
        Ok(pair) => pair,
        Err(e) => return push(format!("loopback transport failed: {e}")),
    };
    let mut daemon = Daemon::new(DaemonConfig::default());
    daemon.spawn_conn(server);
    let mut sink = match SocketSink::start(client, 0, 1_000_000_000, 4) {
        Ok(sink) => sink,
        Err(e) => return push(format!("HELLO failed: {e}")),
    };
    for unit in &units {
        if let Err(e) = sink.write_all(unit) {
            return push(format!("streaming a sink unit failed: {e}"));
        }
    }
    let fin = match sink.finish(
        s.records_drained + s.records_dropped,
        s.records_drained,
        s.records_dropped,
    ) {
        Ok(fin) => fin,
        Err(e) => return push(format!("FIN handshake failed: {e}")),
    };
    let report = daemon.finish();

    if fin.stored != s.records_drained {
        push(format!(
            "daemon stored {} record(s), drained {}",
            fin.stored, s.records_drained
        ));
    }
    let Some(lane) = report.lane(0) else {
        return push("daemon reports no lane for rank 0".into());
    };
    if !lane.finished || lane.quarantined.is_some() {
        push(format!(
            "lane did not finish cleanly: finished {}, quarantined {:?}",
            lane.finished, lane.quarantined
        ));
    }
    if !lane.reconciled() {
        push(format!(
            "lane accounting does not reconcile: fin {:?}, records {}, footer {:?}",
            lane.fin, lane.records, lane.footer
        ));
    }
    if lane.epochs != units.len() as u64 {
        push(format!(
            "daemon accepted {} epoch(s), streamed {}",
            lane.epochs,
            units.len()
        ));
    }

    // The online merge must equal the offline one, byte for byte.
    let offline = TraceReader::from_bytes(bytes.to_vec()).and_then(|reader| merge_ranks(&[reader]));
    match offline {
        Ok(events) => {
            if report.store.export() != timeline_bytes(&events) {
                push(format!(
                    "daemon export ({} record(s)) differs from offline merge ({} record(s))",
                    report.store.len(),
                    events.len()
                ));
            }
        }
        Err(e) => push(format!("offline merge failed: {e}")),
    }
}

/// Reconcile the persisted trace against the summary: footer counters,
/// per-thread and per-region partitions, event pairing, rank-merge
/// determinism.
fn diff_trace(
    scenario: &Scenario,
    outcome: &RunOutcome,
    bytes: &[u8],
    push: &mut impl FnMut(String),
) {
    let s = &outcome.summary;
    let reader = match TraceReader::from_bytes(bytes.to_vec()) {
        Ok(r) => r,
        Err(e) => return push(format!("trace does not decode: {e}")),
    };
    if reader.record_count() != s.records_drained {
        push(format!(
            "footer drained {} != summary drained {}",
            reader.record_count(),
            s.records_drained
        ));
    }
    if reader.dropped() != s.records_dropped {
        push(format!(
            "footer dropped {} != summary dropped {}",
            reader.dropped(),
            s.records_dropped
        ));
    }
    let records = match reader.records() {
        Ok(r) => r,
        Err(e) => return push(format!("trace records do not decode: {e}")),
    };
    if records.len() as u64 != s.records_drained {
        push(format!(
            "decoded {} record(s) != drained {}",
            records.len(),
            s.records_drained
        ));
    }

    // Per-thread partition: each thread's filtered view must be exactly
    // the thread's slice of the full merge, and together they must
    // partition it.
    let mut gtids: Vec<usize> = records.iter().map(|r| r.gtid).collect();
    gtids.sort_unstable();
    gtids.dedup();
    let mut per_thread_total = 0usize;
    for &g in &gtids {
        match reader.for_thread(g) {
            Ok(view) => {
                let want: Vec<_> = records.iter().copied().filter(|r| r.gtid == g).collect();
                if view != want {
                    push(format!("for_thread({g}) disagrees with the merged records"));
                }
                per_thread_total += view.len();
            }
            Err(e) => push(format!("for_thread({g}) failed: {e}")),
        }
    }
    if per_thread_total != records.len() {
        push(format!(
            "per-thread partitions cover {} of {} record(s)",
            per_thread_total,
            records.len()
        ));
    }

    // Per-region partition, same contract.
    let mut regions: Vec<u64> = records.iter().map(|r| r.region_id).collect();
    regions.sort_unstable();
    regions.dedup();
    let mut per_region_total = 0usize;
    for &rid in &regions {
        match reader.for_region(rid) {
            Ok(view) => {
                let want: Vec<_> = records
                    .iter()
                    .copied()
                    .filter(|r| r.region_id == rid)
                    .collect();
                if view != want {
                    push(format!(
                        "for_region({rid}) disagrees with the merged records"
                    ));
                }
                per_region_total += view.len();
            }
            Err(e) => push(format!("for_region({rid}) failed: {e}")),
        }
    }
    if per_region_total != records.len() {
        push(format!(
            "per-region partitions cover {} of {} record(s)",
            per_region_total,
            records.len()
        ));
    }

    // Event pairing: only checkable when nothing was lost and no pause
    // window could swallow one side of a pair.
    if s.records_dropped == 0 && scenario.gates() == 0 {
        let trace = match Trace::from_encoded(bytes) {
            Ok(t) => t,
            Err(e) => return push(format!("trace re-decode failed: {e}")),
        };
        if trace.count(Event::Fork) != trace.count(Event::Join) {
            push(format!(
                "fork count {} != join count {}",
                trace.count(Event::Fork),
                trace.count(Event::Join)
            ));
        }
        if trace.count(Event::LoopBegin) != trace.count(Event::LoopEnd) {
            push(format!(
                "loop begin count {} != loop end count {}",
                trace.count(Event::LoopBegin),
                trace.count(Event::LoopEnd)
            ));
        }
        for begin in [
            Event::ThreadBeginImplicitBarrier,
            Event::ThreadBeginExplicitBarrier,
            Event::ThreadBeginLockWait,
            Event::ThreadBeginCriticalWait,
            Event::ThreadBeginOrderedWait,
            Event::ThreadBeginMaster,
            Event::ThreadBeginSingle,
            Event::TaskBegin,
            Event::TaskWaitBegin,
        ] {
            let unmatched = trace.unmatched_begins(begin);
            if unmatched != 0 {
                push(format!("{} unmatched {:?} interval(s)", unmatched, begin));
            }
        }
    }

    // Multi-rank merge determinism: merging the trace with itself must
    // be stable and keyed `(tick, gtid, seq, rank)` — the rank strictly
    // last. (This is the fuzzer-level regression for the merge_ranks
    // tie-break bug.)
    let two = |bytes: &[u8]| -> Result<Vec<TraceReader>, ora_trace::TraceError> {
        Ok(vec![
            TraceReader::from_bytes(bytes.to_vec())?,
            TraceReader::from_bytes(bytes.to_vec())?,
        ])
    };
    match (two(bytes), two(bytes)) {
        (Ok(a), Ok(b)) => match (merge_ranks(&a), merge_ranks(&b)) {
            (Ok(m1), Ok(m2)) => {
                if m1 != m2 {
                    push("rank merge is not deterministic".into());
                }
                for w in m1.windows(2) {
                    let ka = (
                        w[0].record.tick,
                        w[0].record.gtid,
                        w[0].record.seq,
                        w[0].rank,
                    );
                    let kb = (
                        w[1].record.tick,
                        w[1].record.gtid,
                        w[1].record.seq,
                        w[1].rank,
                    );
                    if ka > kb {
                        push(format!(
                            "rank merge key order violated: {ka:?} precedes {kb:?}"
                        ));
                        break;
                    }
                }
            }
            (Err(e), _) | (_, Err(e)) => push(format!("rank merge failed: {e}")),
        },
        (Err(e), _) | (_, Err(e)) => push(format!("trace re-open failed: {e}")),
    }
}
