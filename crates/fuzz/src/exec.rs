//! Execute a scenario on the real runtime under one collector rung.
//!
//! The executor is the parallel interpretation of the grammar: every
//! team thread walks the op list in lockstep inside a single parallel
//! region, accumulating one `i64` result per op. Mutual-exclusion ops
//! deliberately use a *non-atomic* cell protected only by the construct
//! under test (critical / user lock / ordered turn), so a broken
//! exclusion or a missing release/acquire edge shows up as a lost
//! update in the diff rather than being papered over by an atomic.
//!
//! The run order matters for exact accounting: the runtime is dropped
//! (joining every worker, flushing every in-flight callback) *before*
//! the collection is finished, so `events_observed` and the trace's
//! drain/drop counters reconcile without sleeps or slack.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use collector::discovery::RuntimeHandle;
use collector::modes::{CollectionConfig, CollectionSummary};
use omprt::{Config, OpenMp, ParCtx};
use ora_core::governor::GovernorStatus;
use ora_core::request::{ApiHealth, Request};

use crate::scenario::{mix, mix_small, Op, Scenario};

/// A shared non-atomic counter, protected by whatever construct the op
/// under test provides. SAFETY: all access happens inside that
/// construct's critical section (or, for `Master`, on one thread).
struct RaceProbe(UnsafeCell<i64>);
unsafe impl Sync for RaceProbe {}

impl RaceProbe {
    fn new() -> RaceProbe {
        RaceProbe(UnsafeCell::new(0))
    }
    /// One unsynchronized read-modify-write increment.
    ///
    /// # Safety
    /// The caller must hold the op's mutual exclusion.
    unsafe fn bump(&self) {
        let p = self.0.get();
        unsafe { *p = (*p).wrapping_add(1) };
    }
    /// Fold `i` into the cell with the order-sensitive hash.
    ///
    /// # Safety
    /// The caller must be inside the ordered turn for `i`.
    unsafe fn fold(&self, i: i64) {
        let p = self.0.get();
        unsafe { *p = (*p).wrapping_mul(31).wrapping_add(i) };
    }
    fn get(&self) -> i64 {
        unsafe { *self.0.get() }
    }
}

/// Everything one execution produced, for the differ.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-op computed results, same order as `scenario.ops`.
    pub results: Vec<i64>,
    /// Distinct thread IDs that participated in the post-run probe
    /// region (a wedged or skipped worker shows up here).
    pub post_threads: usize,
    /// The runtime's fault counters after the run.
    pub health: ApiHealth,
    /// What the collection observed.
    pub summary: CollectionSummary,
    /// Encoded trace bytes (streaming rungs only).
    pub trace: Option<Vec<u8>>,
    /// Governor snapshot taken at quiescence, while still armed
    /// (governed rung only).
    pub governor: Option<GovernorStatus>,
}

/// Run `scenario` under `rung` and report everything observable.
pub fn run_under(scenario: &Scenario, rung: CollectionConfig) -> Result<RunOutcome, String> {
    let rt = OpenMp::with_config(Config {
        num_threads: scenario.threads,
        schedule: scenario.schedule.to_schedule(),
        nested: scenario.nested,
        ..Config::default()
    });
    let handle =
        RuntimeHandle::discover_named(rt.symbol_name()).ok_or("runtime symbol did not resolve")?;
    let active = rung
        .attach(&handle)
        .map_err(|e| format!("attach({}) failed: {e}", rung.key()))?;

    // Pause/resume gating only makes sense when collection is STARTed;
    // on the paused rung it would *resume* a deliberately quiescent
    // collector, and on the absent rung there is nothing to gate.
    let gates_enabled = matches!(
        rung,
        CollectionConfig::StateQueries
            | CollectionConfig::StreamingTrace
            | CollectionConfig::Governed
    );

    let cells: Vec<OpCell> = scenario
        .ops
        .iter()
        .map(|op| OpCell::for_op(op, &rt))
        .collect();
    let results: Vec<AtomicI64> = scenario.ops.iter().map(|_| AtomicI64::new(0)).collect();
    rt.parallel(|ctx| {
        for ((op, cell), slot) in scenario.ops.iter().zip(&cells).zip(&results) {
            exec_op(
                &rt,
                &handle,
                ctx,
                op,
                cell,
                slot,
                gates_enabled,
                scenario.nested,
            );
        }
    });

    // Post-run probe: the pool must still field a full team.
    let seen = AtomicUsize::new(0);
    rt.parallel(|ctx| {
        seen.fetch_or(1 << ctx.thread_num().min(63), Ordering::Relaxed);
    });
    let post_threads = seen.load(Ordering::Relaxed).count_ones() as usize;

    let health = handle
        .query_health()
        .map_err(|e| format!("OMP_REQ_HEALTH failed: {e:?}"))?;

    // Join every worker (flushing all in-flight callbacks) before the
    // collection snapshot, so event counts reconcile exactly.
    drop(rt);
    // Snapshot the governor at full quiescence, before finish disarms
    // it — the differ's reconciliation invariant is exact here.
    let governor = (rung == CollectionConfig::Governed)
        .then(|| handle.query_governor())
        .transpose()
        .map_err(|e| format!("OMP_REQ_GOVERNOR failed: {e:?}"))?;
    let (summary, trace) = active
        .finish_with_trace()
        .map_err(|e| format!("finish({}) failed: {e}", rung.key()))?;

    Ok(RunOutcome {
        results: results.iter().map(|r| r.load(Ordering::Relaxed)).collect(),
        post_threads,
        health,
        summary,
        trace,
        governor,
    })
}

/// Per-op shared state, allocated before the region so the closure only
/// captures references.
enum OpCell {
    Sum(AtomicI64),
    Reduce(AtomicU64),
    Probe(RaceProbe),
    /// One shared user lock plus the cell it protects — created before
    /// the region so every thread contends on the *same* lock.
    Lock(omprt::OmpLock, RaceProbe),
    Atomic(AtomicU64),
    None,
}

impl OpCell {
    fn for_op(op: &Op, rt: &OpenMp) -> OpCell {
        match op {
            Op::For { .. }
            | Op::NestedPar { .. }
            | Op::NestedTeam { .. }
            | Op::TaskFlood { .. }
            | Op::TaskProducer { .. }
            | Op::TaskTree { .. } => OpCell::Sum(AtomicI64::new(0)),
            Op::ReduceSum { .. } => OpCell::Reduce(AtomicU64::new(0.0f64.to_bits())),
            Op::ReduceMin { .. } => OpCell::Reduce(AtomicU64::new(f64::INFINITY.to_bits())),
            Op::ReduceMax { .. } => OpCell::Reduce(AtomicU64::new(f64::NEG_INFINITY.to_bits())),
            Op::Ordered { .. } | Op::Critical { .. } | Op::Single { .. } | Op::Master { .. } => {
                OpCell::Probe(RaceProbe::new())
            }
            Op::Lock { .. } => OpCell::Lock(rt.new_lock(), RaceProbe::new()),
            Op::Atomic { .. } => OpCell::Atomic(AtomicU64::new(0)),
            Op::Barrier | Op::Gate => OpCell::None,
        }
    }
}

/// One link of a `NestedTeam` chain: fork a region of `threads`
/// threads, have every member fold `level * 100 + thread_num` into
/// `acc`, and recurse from the inner master until `depth` links exist.
/// The level/parent-region invariants are asserted inline — under real
/// nesting the paper's §IV-E contract (fresh region ID, parent chain,
/// incremented level), serialized the compiler-default contract (outer
/// region ID kept, level still counts the lexical nesting).
fn nested_chain(
    rt: &OpenMp,
    nested: bool,
    threads: usize,
    depth: usize,
    parent_level: u32,
    parent_region: u64,
    acc: &AtomicI64,
) {
    if depth == 0 {
        return;
    }
    rt.parallel_n(threads, |inner| {
        assert_eq!(inner.level(), parent_level + 1, "level must increment");
        if nested {
            assert_eq!(
                inner.num_threads(),
                threads,
                "real nesting forks the full sub-team"
            );
            assert_eq!(
                inner.parent_region_id(),
                parent_region,
                "parent region chain broken"
            );
            assert_ne!(
                inner.region_id(),
                parent_region,
                "sub-team needs its own region"
            );
        } else {
            assert_eq!(inner.num_threads(), 1, "serialized nesting is solo");
            assert_eq!(
                inner.region_id(),
                parent_region,
                "serialized nesting keeps the outer region ID"
            );
        }
        acc.fetch_add(
            (inner.level() as i64) * 100 + inner.thread_num() as i64,
            Ordering::Relaxed,
        );
        if inner.thread_num() == 0 {
            nested_chain(
                rt,
                nested,
                threads,
                depth - 1,
                inner.level(),
                inner.region_id(),
                acc,
            );
        }
    });
}

/// Grow a task tree: each call spawns `fanout` children and each child
/// recurses until `depth` levels exist, counting every node. Levels
/// alternate tied/untied so trees exercise both scheduling paths.
fn grow_tree(scope: &omprt::TaskScope<'_>, nodes: &Arc<AtomicI64>, fanout: usize, depth: usize) {
    for _ in 0..fanout {
        let n = Arc::clone(nodes);
        let body = move |s: &omprt::TaskScope<'_>| {
            n.fetch_add(1, Ordering::Relaxed);
            if depth > 1 {
                grow_tree(s, &n, fanout, depth - 1);
            }
        };
        if depth.is_multiple_of(2) {
            scope.spawn_scoped_untied(body);
        } else {
            scope.spawn_scoped(body);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_op(
    rt: &OpenMp,
    handle: &RuntimeHandle,
    ctx: &ParCtx<'_>,
    op: &Op,
    cell: &OpCell,
    slot: &AtomicI64,
    gates_enabled: bool,
    nested: bool,
) {
    match (op, cell) {
        (Op::For { sched, count }, OpCell::Sum(acc)) => {
            let mut local = 0i64;
            ctx.for_schedule(sched.to_schedule(), 0, count - 1, 1, |i| {
                local = local.wrapping_add(mix(i));
            });
            acc.fetch_add(local, Ordering::Relaxed);
            ctx.barrier();
            if ctx.is_master() {
                slot.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        (Op::ReduceSum { count }, OpCell::Reduce(acc)) => {
            let total = ctx.for_reduce_sum(0, count - 1, |i| (i % 97) as f64, acc);
            if ctx.is_master() {
                slot.store(total as i64, Ordering::Relaxed);
            }
        }
        (Op::ReduceMin { count }, OpCell::Reduce(acc)) => {
            let total = ctx.for_reduce_min(0, count - 1, |i| mix_small(i) as f64, acc);
            if ctx.is_master() {
                slot.store(total as i64, Ordering::Relaxed);
            }
        }
        (Op::ReduceMax { count }, OpCell::Reduce(acc)) => {
            let total = ctx.for_reduce_max(0, count - 1, |i| mix_small(i) as f64, acc);
            if ctx.is_master() {
                slot.store(total as i64, Ordering::Relaxed);
            }
        }
        (Op::Ordered { count }, OpCell::Probe(probe)) => {
            ctx.for_ordered(0, count - 1, 1, |i| {
                // SAFETY: inside the ordered turn for `i`; turns are
                // Release/Acquire-chained by the turn word.
                unsafe { probe.fold(i) };
            });
            ctx.barrier();
            if ctx.is_master() {
                slot.store(probe.get(), Ordering::Relaxed);
            }
        }
        (Op::Critical { rounds }, OpCell::Probe(probe)) => {
            for _ in 0..*rounds {
                // SAFETY: inside the named critical section.
                ctx.critical("fuzz", || unsafe { probe.bump() });
            }
            ctx.barrier();
            if ctx.is_master() {
                slot.store(probe.get(), Ordering::Relaxed);
            }
        }
        (Op::Lock { rounds }, OpCell::Lock(lock, probe)) => {
            for _ in 0..*rounds {
                lock.set();
                // SAFETY: the shared user lock is held.
                unsafe { probe.bump() };
                lock.unset();
            }
            ctx.barrier();
            if ctx.is_master() {
                slot.store(probe.get(), Ordering::Relaxed);
            }
        }
        (Op::Atomic { rounds }, OpCell::Atomic(acc)) => {
            for _ in 0..*rounds {
                ctx.atomic_update(acc, |v| v.wrapping_add(1));
            }
            ctx.barrier();
            if ctx.is_master() {
                slot.store(acc.load(Ordering::Relaxed) as i64, Ordering::Relaxed);
            }
        }
        (Op::Single { rounds }, OpCell::Probe(probe)) => {
            for _ in 0..*rounds {
                // `single` carries its closing barrier, which orders one
                // round's increment before the next round's executor.
                ctx.single(|| {
                    // SAFETY: exactly one thread per encounter, rounds
                    // separated by the single's barrier.
                    unsafe { probe.bump() };
                });
            }
            if ctx.is_master() {
                slot.store(probe.get(), Ordering::Relaxed);
            }
        }
        (Op::Master { rounds }, OpCell::Probe(probe)) => {
            for _ in 0..*rounds {
                // SAFETY: master-only, one thread.
                ctx.master(|| unsafe { probe.bump() });
            }
            ctx.barrier();
            if ctx.is_master() {
                slot.store(probe.get(), Ordering::Relaxed);
            }
        }
        (Op::TaskFlood { count, untied }, OpCell::Sum(acc)) => {
            for i in 0..*count {
                // SAFETY: `acc` lives past the region; the taskwait
                // below drains every spawned task before the borrow
                // can end.
                unsafe {
                    if *untied {
                        ctx.task_borrowed_untied(move || {
                            acc.fetch_add(mix(i), Ordering::Relaxed);
                        });
                    } else {
                        ctx.task_borrowed(move || {
                            acc.fetch_add(mix(i), Ordering::Relaxed);
                        });
                    }
                }
            }
            ctx.taskwait();
            ctx.barrier();
            if ctx.is_master() {
                slot.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        (Op::TaskProducer { count }, OpCell::Sum(acc)) => {
            ctx.barrier();
            if ctx.is_master() {
                for i in 0..*count {
                    // SAFETY: as for TaskFlood — drained by the
                    // taskwait below; untied, so any teammate may run
                    // the closure, which only touches the atomic.
                    unsafe {
                        ctx.task_borrowed_untied(move || {
                            acc.fetch_add(mix(i), Ordering::Relaxed);
                        });
                    }
                }
            }
            ctx.taskwait();
            ctx.barrier();
            if ctx.is_master() {
                slot.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        (Op::TaskTree { fanout, depth }, OpCell::Sum(acc)) => {
            ctx.barrier();
            if ctx.is_master() {
                let nodes = Arc::new(AtomicI64::new(0));
                let (f, d) = (*fanout, *depth);
                let n = Arc::clone(&nodes);
                ctx.task_scoped(move |scope| grow_tree(scope, &n, f, d));
                ctx.taskwait();
                acc.fetch_add(nodes.load(Ordering::Relaxed), Ordering::Relaxed);
                slot.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            ctx.barrier();
        }
        (Op::Barrier, OpCell::None) => ctx.barrier(),
        (Op::Gate, OpCell::None) => {
            ctx.barrier();
            if ctx.is_master() && gates_enabled {
                let _ = handle.request_one(Request::Pause);
                let _ = handle.request_one(Request::Resume);
            }
            ctx.barrier();
        }
        (Op::NestedTeam { threads, depth }, OpCell::Sum(acc)) => {
            ctx.barrier();
            if ctx.is_master() {
                nested_chain(
                    rt,
                    nested,
                    *threads,
                    *depth,
                    ctx.level(),
                    ctx.region_id(),
                    acc,
                );
                slot.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            ctx.barrier();
        }
        (Op::NestedPar { threads, count }, OpCell::Sum(acc)) => {
            ctx.barrier();
            if ctx.is_master() {
                rt.parallel_n(*threads, |inner| {
                    let mut local = 0i64;
                    inner.for_each(0, count - 1, |i| local = local.wrapping_add(mix(i)));
                    acc.fetch_add(local, Ordering::Relaxed);
                });
                slot.store(acc.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            ctx.barrier();
        }
        _ => unreachable!("op/cell mismatch"),
    }
}
