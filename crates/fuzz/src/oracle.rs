//! The sequential oracle: the result every execution must reproduce.
//!
//! Each [`Op`] computes one `i64`. The payloads are chosen so the
//! parallel execution is *obligated* to agree with a sequential
//! interpretation, bit for bit:
//!
//! - sums use wrapping integer addition (associative + commutative);
//! - float reductions only ever see integer-valued `f64`s far below
//!   2^53, so accumulation is exact regardless of combine order;
//! - mutual-exclusion ops count increments, which only agree when no
//!   update was lost;
//! - the ordered op folds iterations through a *non-commutative* hash,
//!   so any deviation from global iteration order changes the value.

use crate::scenario::{mix, mix_small, Op, Scenario};

/// The expected result of one op under `threads` team threads.
pub fn expected_op(op: &Op, threads: usize) -> i64 {
    match *op {
        Op::For { count, .. } => (0..count).fold(0i64, |a, i| a.wrapping_add(mix(i))),
        Op::ReduceSum { count } => (0..count).map(|i| i % 97).sum(),
        Op::ReduceMin { count } => (0..count).map(mix_small).min().unwrap_or(i64::MAX),
        Op::ReduceMax { count } => (0..count).map(mix_small).max().unwrap_or(i64::MIN),
        Op::Ordered { count } => (0..count).fold(0i64, |h, i| h.wrapping_mul(31).wrapping_add(i)),
        Op::Critical { rounds } | Op::Lock { rounds } | Op::Atomic { rounds } => {
            rounds * threads as i64
        }
        Op::Single { rounds } => rounds,
        Op::Master { rounds } => rounds,
        Op::Barrier | Op::Gate => 0,
        Op::NestedPar { count, .. } => (0..count).fold(0i64, |a, i| a.wrapping_add(mix(i))),
        // Each of the `threads` spawners contributes the same sum, no
        // matter which thread ends up executing which task.
        Op::TaskFlood { count, .. } => (0..count)
            .fold(0i64, |a, i| a.wrapping_add(mix(i)))
            .wrapping_mul(threads as i64),
        Op::TaskProducer { count } => (0..count).fold(0i64, |a, i| a.wrapping_add(mix(i))),
        // One increment per tree node: fanout + fanout^2 + ... ^depth.
        Op::TaskTree { fanout, depth } => {
            let mut total = 0i64;
            let mut level = 1i64;
            for _ in 0..depth {
                level *= fanout as i64;
                total += level;
            }
            total
        }
    }
}

/// The expected result vector of a whole scenario.
pub fn expected(scenario: &Scenario) -> Vec<i64> {
    scenario
        .ops
        .iter()
        .map(|op| expected_op(op, scenario.threads))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SchedSpec;

    #[test]
    fn mutual_exclusion_ops_scale_with_threads() {
        assert_eq!(expected_op(&Op::Critical { rounds: 5 }, 4), 20);
        assert_eq!(expected_op(&Op::Lock { rounds: 3 }, 2), 6);
        assert_eq!(expected_op(&Op::Single { rounds: 7 }, 4), 7);
        assert_eq!(expected_op(&Op::Master { rounds: 2 }, 4), 2);
    }

    #[test]
    fn ordered_hash_is_order_sensitive() {
        // Swapping two iterations changes the fold.
        let in_order = expected_op(&Op::Ordered { count: 5 }, 2);
        let swapped = [0i64, 1, 3, 2, 4]
            .iter()
            .fold(0i64, |h, i| h.wrapping_mul(31).wrapping_add(*i));
        assert_ne!(in_order, swapped);
    }

    #[test]
    fn reduce_payloads_are_exact_in_f64() {
        for i in 0..10_000 {
            let v = mix_small(i);
            assert_eq!(v as f64 as i64, v);
            assert!(v.abs() < 1 << 20);
        }
    }

    #[test]
    fn task_ops_have_closed_form_results() {
        // A flood's sum scales with the spawner count, not the executor.
        let one = expected_op(
            &Op::TaskFlood {
                count: 10,
                untied: true,
            },
            1,
        );
        let four = expected_op(
            &Op::TaskFlood {
                count: 10,
                untied: false,
            },
            4,
        );
        assert_eq!(four, one.wrapping_mul(4));
        // A producer's sum does not scale with the team.
        assert_eq!(
            expected_op(&Op::TaskProducer { count: 10 }, 1),
            expected_op(&Op::TaskProducer { count: 10 }, 8),
        );
        // Trees count their nodes: 3 + 9 + 27.
        assert_eq!(
            expected_op(
                &Op::TaskTree {
                    fanout: 3,
                    depth: 3
                },
                4
            ),
            39
        );
        assert_eq!(
            expected_op(
                &Op::TaskTree {
                    fanout: 1,
                    depth: 1
                },
                2
            ),
            1
        );
    }

    #[test]
    fn expected_covers_every_op() {
        let s = Scenario {
            threads: 2,
            nested: false,
            schedule: SchedSpec::StaticEven,
            ops: vec![
                Op::For {
                    sched: SchedSpec::Dynamic(2),
                    count: 10,
                },
                Op::Barrier,
                Op::Gate,
            ],
        };
        let e = expected(&s);
        assert_eq!(e.len(), 3);
        assert_eq!(e[1], 0);
        assert_eq!(e[2], 0);
    }
}
