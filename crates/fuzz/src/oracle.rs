//! The sequential oracle: the result every execution must reproduce.
//!
//! Each [`Op`] computes one `i64`. The payloads are chosen so the
//! parallel execution is *obligated* to agree with a sequential
//! interpretation, bit for bit:
//!
//! - sums use wrapping integer addition (associative + commutative);
//! - float reductions only ever see integer-valued `f64`s far below
//!   2^53, so accumulation is exact regardless of combine order;
//! - mutual-exclusion ops count increments, which only agree when no
//!   update was lost;
//! - the ordered op folds iterations through a *non-commutative* hash,
//!   so any deviation from global iteration order changes the value.

use crate::scenario::{mix, mix_small, Op, Scenario};

/// The expected result of one op under `threads` team threads.
/// `nested` is the scenario's nesting mode: it decides whether a
/// nested-team probe forks real sub-teams or serialized 1-thread
/// regions, which changes the closed form.
pub fn expected_op(op: &Op, threads: usize, nested: bool) -> i64 {
    match *op {
        Op::For { count, .. } => (0..count).fold(0i64, |a, i| a.wrapping_add(mix(i))),
        Op::ReduceSum { count } => (0..count).map(|i| i % 97).sum(),
        Op::ReduceMin { count } => (0..count).map(mix_small).min().unwrap_or(i64::MAX),
        Op::ReduceMax { count } => (0..count).map(mix_small).max().unwrap_or(i64::MIN),
        Op::Ordered { count } => (0..count).fold(0i64, |h, i| h.wrapping_mul(31).wrapping_add(i)),
        Op::Critical { rounds } | Op::Lock { rounds } | Op::Atomic { rounds } => {
            rounds * threads as i64
        }
        Op::Single { rounds } => rounds,
        Op::Master { rounds } => rounds,
        Op::Barrier | Op::Gate => 0,
        Op::NestedPar { count, .. } => (0..count).fold(0i64, |a, i| a.wrapping_add(mix(i))),
        // Every member of every link in the nesting chain contributes
        // `level * 100 + thread_num`. The ops run at level 1, so link
        // `d` (1-based) runs at level `1 + d`; real nesting gives each
        // link `threads` members, serialized nesting gives it one.
        Op::NestedTeam { threads, depth } => {
            let team = if nested { threads as i64 } else { 1 };
            (1..=depth as i64)
                .map(|d| (0..team).map(|t| (1 + d) * 100 + t).sum::<i64>())
                .sum()
        }
        // Each of the `threads` spawners contributes the same sum, no
        // matter which thread ends up executing which task.
        Op::TaskFlood { count, .. } => (0..count)
            .fold(0i64, |a, i| a.wrapping_add(mix(i)))
            .wrapping_mul(threads as i64),
        Op::TaskProducer { count } => (0..count).fold(0i64, |a, i| a.wrapping_add(mix(i))),
        // One increment per tree node: fanout + fanout^2 + ... ^depth.
        Op::TaskTree { fanout, depth } => {
            let mut total = 0i64;
            let mut level = 1i64;
            for _ in 0..depth {
                level *= fanout as i64;
                total += level;
            }
            total
        }
    }
}

/// The expected result vector of a whole scenario.
pub fn expected(scenario: &Scenario) -> Vec<i64> {
    scenario
        .ops
        .iter()
        .map(|op| expected_op(op, scenario.threads, scenario.nested))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SchedSpec;

    #[test]
    fn mutual_exclusion_ops_scale_with_threads() {
        assert_eq!(expected_op(&Op::Critical { rounds: 5 }, 4, false), 20);
        assert_eq!(expected_op(&Op::Lock { rounds: 3 }, 2, false), 6);
        assert_eq!(expected_op(&Op::Single { rounds: 7 }, 4, false), 7);
        assert_eq!(expected_op(&Op::Master { rounds: 2 }, 4, false), 2);
    }

    #[test]
    fn ordered_hash_is_order_sensitive() {
        // Swapping two iterations changes the fold.
        let in_order = expected_op(&Op::Ordered { count: 5 }, 2, false);
        let swapped = [0i64, 1, 3, 2, 4]
            .iter()
            .fold(0i64, |h, i| h.wrapping_mul(31).wrapping_add(*i));
        assert_ne!(in_order, swapped);
    }

    #[test]
    fn reduce_payloads_are_exact_in_f64() {
        for i in 0..10_000 {
            let v = mix_small(i);
            assert_eq!(v as f64 as i64, v);
            assert!(v.abs() < 1 << 20);
        }
    }

    #[test]
    fn task_ops_have_closed_form_results() {
        // A flood's sum scales with the spawner count, not the executor.
        let one = expected_op(
            &Op::TaskFlood {
                count: 10,
                untied: true,
            },
            1,
            false,
        );
        let four = expected_op(
            &Op::TaskFlood {
                count: 10,
                untied: false,
            },
            4,
            false,
        );
        assert_eq!(four, one.wrapping_mul(4));
        // A producer's sum does not scale with the team.
        assert_eq!(
            expected_op(&Op::TaskProducer { count: 10 }, 1, false),
            expected_op(&Op::TaskProducer { count: 10 }, 8, false),
        );
        // Trees count their nodes: 3 + 9 + 27.
        assert_eq!(
            expected_op(
                &Op::TaskTree {
                    fanout: 3,
                    depth: 3
                },
                4,
                false
            ),
            39
        );
        assert_eq!(
            expected_op(
                &Op::TaskTree {
                    fanout: 1,
                    depth: 1
                },
                2,
                false
            ),
            1
        );
    }

    #[test]
    fn nested_team_closed_form_tracks_nesting_mode() {
        let op = Op::NestedTeam {
            threads: 3,
            depth: 2,
        };
        // Real nesting: level 2 gives 200+201+202, level 3 gives
        // 300+301+302.
        assert_eq!(expected_op(&op, 4, true), 603 + 903);
        // Serialized: one member per link, thread_num always 0.
        assert_eq!(expected_op(&op, 4, false), 200 + 300);
        // Depth 1 is a single link.
        let shallow = Op::NestedTeam {
            threads: 2,
            depth: 1,
        };
        assert_eq!(expected_op(&shallow, 2, true), 200 + 201);
        assert_eq!(expected_op(&shallow, 2, false), 200);
    }

    #[test]
    fn expected_covers_every_op() {
        let s = Scenario {
            threads: 2,
            nested: false,
            schedule: SchedSpec::StaticEven,
            ops: vec![
                Op::For {
                    sched: SchedSpec::Dynamic(2),
                    count: 10,
                },
                Op::Barrier,
                Op::Gate,
            ],
        };
        let e = expected(&s);
        assert_eq!(e.len(), 3);
        assert_eq!(e[1], 0);
        assert_eq!(e[2], 0);
    }
}
