//! `ora-fuzz` — the oracle-differential scenario fuzzer.
//!
//! A seeded generator ([`gen`]) produces small region programs
//! ([`scenario::Scenario`]) over the constructs the runtime implements:
//! nested parallel regions, worksharing under every schedule (with trip
//! counts aimed at the batched claimer's tail), reductions, locks,
//! critical and ordered sections, single/master, barriers, and
//! pause/resume gating of the collector.
//!
//! Every scenario has a closed-form sequential result ([`oracle`]).
//! The harness executes it under every collector rung
//! ([`exec`], [`collector::modes::CollectionConfig::ALL`]) and diffs
//! ([`diff`]) computed results, final thread states, `ApiHealth`
//! counters, and — on the streaming rung — the full trace accounting
//! chain: callback counts vs drain/drop counters vs the persisted
//! footer, per-thread/per-region partitions, event pairing, and
//! multi-rank merge determinism.
//!
//! Failures shrink ([`minimize`]) to a declarative case file
//! (`tests/fuzz_cases/*.case`) that replays forever as a regression.
//! The CLI lives in `omp_prof fuzz`.

pub mod diff;
pub mod exec;
pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod scenario;

pub use diff::{check_scenario, check_scenario_rungs, Mismatch};
pub use exec::{run_under, RunOutcome};
pub use gen::generate;
pub use minimize::{fails_with_retries, fails_with_retries_on, minimize};
pub use scenario::{Op, Scenario, SchedSpec};
