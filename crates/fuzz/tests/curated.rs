//! Replay every curated case file in `tests/fuzz_cases/` through the
//! full differential harness, plus a short seeded smoke sweep. These
//! are the fast regression net; the deep sweep lives in the nightly
//! `omp_prof fuzz` job.

use std::fs;
use std::path::PathBuf;

use ora_fuzz::{check_scenario, generate, Scenario};

fn cases_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_cases")
}

#[test]
fn curated_cases_exist_and_parse() {
    let mut n = 0;
    for entry in fs::read_dir(cases_dir()).expect("tests/fuzz_cases missing") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("case") {
            continue;
        }
        let text = fs::read_to_string(&path).unwrap();
        Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        n += 1;
    }
    assert!(n >= 8, "expected the curated suite, found {n} case file(s)");
}

#[test]
fn curated_cases_pass_on_all_rungs() {
    let mut paths: Vec<PathBuf> = fs::read_dir(cases_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("case"))
        .collect();
    paths.sort();
    for path in paths {
        let text = fs::read_to_string(&path).unwrap();
        let scenario = Scenario::parse(&text).unwrap();
        let mismatches = check_scenario(&scenario);
        assert!(
            mismatches.is_empty(),
            "{} failed:\n{}",
            path.display(),
            mismatches
                .iter()
                .map(|m| format!("  {m}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn seeded_smoke_sweep_passes() {
    for seed in 0..8u64 {
        let scenario = generate(seed);
        let mismatches = check_scenario(&scenario);
        assert!(
            mismatches.is_empty(),
            "seed {seed} failed:\n{}\ncase file:\n{}",
            mismatches
                .iter()
                .map(|m| format!("  {m}"))
                .collect::<Vec<_>>()
                .join("\n"),
            scenario.to_case_file()
        );
    }
}
