//! Analyzer-oracle checks: traces with a *planted* detrimental task
//! pattern must be flagged by `ora_trace::analyze`, and traces from
//! healthy task shapes must come back clean. This pins the analyzer's
//! thresholds against the real runtime's event stream rather than the
//! synthetic-tick fixtures in its unit tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use collector::discovery::RuntimeHandle;
use collector::modes::CollectionConfig;
use omprt::OpenMp;
use ora_fuzz::{run_under, Op, Scenario, SchedSpec};
use ora_trace::analyze::{analyze, AnalyzeConfig, PatternKind};
use ora_trace::{merge_ranks, TraceReader};

/// Run the planted-pattern region program under the streaming tracer
/// and return the merged single-rank timeline.
fn traced_events(body: impl Fn(&omprt::ParCtx<'_>) + Sync) -> Vec<ora_trace::RankedEvent> {
    let rt = OpenMp::with_threads(4);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).expect("runtime symbol");
    let active = CollectionConfig::StreamingTrace
        .attach(&handle)
        .expect("attach tracer");
    rt.parallel(&body);
    drop(rt);
    let (_, trace) = active.finish_with_trace().expect("finish trace");
    let reader = TraceReader::from_bytes(trace.expect("trace bytes")).expect("decode");
    merge_ranks(&[reader]).expect("merge")
}

/// Like [`traced_events`] but with real nesting enabled and the runtime
/// handle passed to the body, so region programs can fork sub-teams.
fn traced_events_nested(
    threads: usize,
    body: impl Fn(&OpenMp, &omprt::ParCtx<'_>) + Sync,
) -> Vec<ora_trace::RankedEvent> {
    let rt = OpenMp::with_config(omprt::Config {
        num_threads: threads,
        nested: true,
        ..omprt::Config::default()
    });
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).expect("runtime symbol");
    let active = CollectionConfig::StreamingTrace
        .attach(&handle)
        .expect("attach tracer");
    rt.parallel(|ctx| body(&rt, ctx));
    drop(rt);
    let (_, trace) = active.finish_with_trace().expect("finish trace");
    let reader = TraceReader::from_bytes(trace.expect("trace bytes")).expect("decode");
    merge_ranks(&[reader]).expect("merge")
}

#[test]
fn nested_inner_barriers_do_not_pollute_outer_convoy_attribution() {
    // The master forks an inner sub-team (with its own barriers) before
    // every outer explicit barrier. The inner barriers advance the
    // master's per-descriptor wait-id counter, so its outer arrivals
    // carry wait IDs out of lockstep with its teammates — the shape
    // that used to scatter real episodes into phantom ones and blame
    // an innocent teammate. Nesting-aware clustering must pin the
    // convoy on the master (the genuine laggard: everyone else waits
    // out its inner excursion) and must not flag the short-lived inner
    // regions at all.
    let events = traced_events_nested(3, |rt, ctx| {
        for _ in 0..12 {
            if ctx.is_master() {
                rt.parallel_n(2, |inner| {
                    inner.barrier();
                    std::thread::sleep(Duration::from_micros(400));
                    inner.barrier();
                });
            }
            ctx.barrier();
        }
    });

    let report = analyze(&events, &AnalyzeConfig::default());
    let convoys: Vec<_> = report.of_kind(PatternKind::BarrierConvoy).collect();
    assert!(
        !convoys.is_empty(),
        "the master-led outer convoy must still be detected:\n{}",
        report.render()
    );
    assert!(
        convoys.iter().all(|f| f.gtid == 0),
        "inner-team barriers were misattributed to a teammate:\n{}",
        report.render()
    );
}

#[test]
fn planted_serialized_flood_is_flagged_as_serialized_and_starved() {
    // The deliberately detrimental shape: the master floods tied tasks
    // (nobody else may run them) while its three teammates sit in
    // taskwait. Tasks carry real duration so the teammates' wait
    // windows reliably overlap the flood.
    let sum = AtomicU64::new(0);
    let events = traced_events(|ctx| {
        if ctx.thread_num() == 0 {
            for i in 0..24u64 {
                ctx.task(move || std::thread::sleep(Duration::from_micros(300 + i)));
            }
        }
        ctx.barrier();
        ctx.taskwait();
        sum.fetch_add(1, Ordering::Relaxed);
    });

    let report = analyze(&events, &AnalyzeConfig::default());
    assert!(
        report.of_kind(PatternKind::SerializedSpawn).count() >= 1,
        "serialized spawn not flagged:\n{}",
        report.render()
    );
    assert!(
        report.of_kind(PatternKind::Starvation).count() >= 1,
        "starvation not flagged:\n{}",
        report.render()
    );
    // The evidence must point at the master as the serializer and at a
    // non-master thread as starved.
    assert!(report
        .of_kind(PatternKind::SerializedSpawn)
        .all(|f| f.gtid == 0));
    assert!(report.of_kind(PatternKind::Starvation).all(|f| f.gtid != 0));
}

#[test]
fn balanced_task_flood_trace_stays_clean() {
    // Every thread spawns and drains its own share: no starvation, no
    // dominant spawner. Run through the fuzz harness so this is the
    // same trace shape the differential sweep produces.
    let scenario = Scenario {
        threads: 4,
        nested: false,
        schedule: SchedSpec::StaticEven,
        ops: vec![
            Op::TaskFlood {
                count: 32,
                untied: false,
            },
            Op::Barrier,
            Op::TaskFlood {
                count: 24,
                untied: false,
            },
        ],
    };
    let outcome = run_under(&scenario, CollectionConfig::StreamingTrace).expect("run");
    let reader = TraceReader::from_bytes(outcome.trace.expect("trace bytes")).expect("decode");
    let events = merge_ranks(&[reader]).expect("merge");

    let report = analyze(&events, &AnalyzeConfig::default());
    assert!(
        report.findings.is_empty(),
        "balanced flood misflagged:\n{}",
        report.render()
    );
}

#[test]
fn taskless_worksharing_trace_stays_clean() {
    // No task events at all: the analyzer must not invent findings
    // from plain worksharing and barriers.
    let scenario = Scenario {
        threads: 4,
        nested: false,
        schedule: SchedSpec::Dynamic(2),
        ops: vec![
            Op::For {
                sched: SchedSpec::Dynamic(2),
                count: 200,
            },
            Op::Barrier,
            Op::ReduceSum { count: 100 },
        ],
    };
    let outcome = run_under(&scenario, CollectionConfig::StreamingTrace).expect("run");
    let reader = TraceReader::from_bytes(outcome.trace.expect("trace bytes")).expect("decode");
    let events = merge_ranks(&[reader]).expect("merge");

    let report = analyze(&events, &AnalyzeConfig::default());
    assert!(
        report.findings.is_empty(),
        "worksharing misflagged:\n{}",
        report.render()
    );
}
