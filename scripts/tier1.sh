#!/usr/bin/env bash
# Tier-1 verification: the hermetic build-and-test gate (see ROADMAP.md).
#
# Runs fully offline — the workspace has no registry dependencies, so
# `--offline` both works and enforces that nobody reintroduces one.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The micro-bench harness is feature-gated off by default; make sure the
# measurement loops keep compiling too.
cargo build -p ora-bench --features bench --offline

echo "tier1: OK"
