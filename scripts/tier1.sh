#!/usr/bin/env bash
# Tier-1 verification: the hermetic build-and-test gate (see ROADMAP.md).
#
# Runs fully offline — the workspace has no registry dependencies, so
# `--offline` both works and enforces that nobody reintroduces one.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast with an actionable message when the rustfmt component is
# missing (a bare-bones toolchain install) — otherwise `cargo fmt`
# fails mid-gate with rustup noise that buries the real problem.
if ! cargo fmt --version >/dev/null 2>&1; then
  echo "tier1: 'cargo fmt' is unavailable — install the rustfmt component" >&2
  echo "tier1:   rustup component add rustfmt clippy" >&2
  echo "tier1: (rust-toolchain.toml pins it; a non-rustup toolchain must provide it itself)" >&2
  exit 1
fi

cargo fmt --all --check
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The micro-bench harness is feature-gated off by default; make sure the
# measurement loops keep compiling too — and keep them lint-clean.
cargo build -p ora-bench --features bench --offline
cargo clippy -p ora-bench --features bench --all-targets --offline -- -D warnings

# Fuzzer smoke slice: replay every curated regression case through the
# oracle-differential harness via the CLI (the deep seeded sweep is the
# nightly fuzz job; this is the fast fixed net).
cargo run -q --release --offline -p ora-bench --bin omp_prof -- \
  fuzz --cases tests/fuzz_cases

echo "tier1: OK"
