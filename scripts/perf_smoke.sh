#!/usr/bin/env bash
# Perf smoke: run the quick ora-meter suites and gate against the
# committed baselines in results/baselines/.
#
# Usage: scripts/perf_smoke.sh [report|enforce] [out_dir]
#
#   report  (default) — run + compare, print regressions, always exit 0
#                       (PR mode: runner hardware differs from the
#                       baseline machine, so a miss is a signal to a
#                       human, not a merge blocker)
#   enforce           — exit non-zero when `bench compare` finds a
#                       regression past the threshold with disjoint CIs
#                       (main-branch mode)
#
# The threshold (percent) can be overridden via PERF_THRESHOLD; the
# suite list via PERF_SUITES (space-separated, default "epcc npb sync
# tasks topo" — the dispatch CI job runs PERF_SUITES=dispatch on its
# own cadence, and the topology CI jobs re-run "sync topo" under
# different injected OMP_ORA_TOPOLOGY shapes).
#
# OMP_ORA_TOPOLOGY defaults to the 2x4x2 reference shape so the
# topology-shaped barrier (and therefore the sync/topo numbers and the
# committed baselines) is identical on every host; export it to gate
# under a different injected machine model.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-report}"
out="${2:-perf-smoke}"
threshold="${PERF_THRESHOLD:-10}"
suites="${PERF_SUITES:-epcc npb sync tasks topo}"
export OMP_ORA_TOPOLOGY="${OMP_ORA_TOPOLOGY:-2x4x2}"

mkdir -p "$out"
for suite in $suites; do
  cargo run --release --offline -p ora-bench --bin omp_prof -- \
    bench run --quick --suite "$suite" --out-dir "$out"
done

status=0
for suite in $suites; do
  base="results/baselines/BENCH_${suite}.json"
  new="$out/BENCH_${suite}.json"
  if [[ ! -f "$base" ]]; then
    echo "perf-smoke: no baseline $base — skipping comparison" >&2
    continue
  fi
  echo "== compare $suite (threshold ${threshold}%) =="
  if ! cargo run --release --offline -p ora-bench --bin omp_prof -- \
      bench compare "$base" "$new" --threshold "$threshold"; then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  if [[ "$mode" == "enforce" ]]; then
    echo "perf-smoke: overhead regression past ${threshold}% — failing (enforce mode)" >&2
    exit 1
  fi
  echo "perf-smoke: overhead regression past ${threshold}% — report-only mode, not failing" >&2
fi
echo "perf-smoke: OK (${mode} mode)"
