#!/usr/bin/env bash
# Fault-injection and oversubscription stress: sweep the seeded fault
# harness across several seeds and drive the CLI acceptance scenario
# (permanently-panicking callback + killed drainer under --policy block).
#
# Usage: scripts/stress.sh [seed ...]
#
# Default sweep: seeds 1..5. On failure the offending seed is written to
# stress-failures/ (CI uploads that directory as an artifact) so the run
# can be replayed locally with:
#
#   ORA_FAULT_SEED=<seed> cargo test -p omprt --test sync_stress
#   ORA_FAULT_SEED=<seed> cargo test -p omprt --test task_stress
#   ORA_FAULT_SEED=<seed> cargo test -p ora-trace --test fault_props
#   ORA_FAULT_SEED=<seed> cargo test -p ora-bench --test fault_isolation
set -euo pipefail
cd "$(dirname "$0")/.."

seeds=("$@")
if [[ ${#seeds[@]} -eq 0 ]]; then
  seeds=(1 2 3 4 5)
fi

mkdir -p stress-failures
status=0

run_seeded() {
  local seed="$1"
  shift
  if ! ORA_FAULT_SEED="$seed" cargo test -q --offline "$@"; then
    echo "stress: FAILED at seed $seed ($*)" >&2
    echo "$seed $*" >> stress-failures/failed-seeds.txt
    status=1
  fi
}

for seed in "${seeds[@]}"; do
  echo "== stress sweep: seed $seed =="
  # Seeded quarantine property tests on the dispatcher.
  run_seeded "$seed" -p ora-core --lib seeded_props
  # Parking layer + barrier episodes under oversubscription; shutdown
  # racing workers that are mid-park.
  run_seeded "$seed" -p omprt --test sync_stress
  # Work-stealing task scheduler: tied/untied storms, overflow spill,
  # and taskwait parking on oversubscribed teams.
  run_seeded "$seed" -p omprt --test task_stress
  # Sink faults, dead drainers, and oversubscribed Block producers.
  run_seeded "$seed" -p ora-trace --test fault_props --test stress
  # Live-runtime workloads under injected collector faults.
  run_seeded "$seed" -p ora-bench --test fault_isolation
done

# Oracle-differential fuzz sweep: one block of generated scenarios per
# stress seed (seed s covers generator seeds s*100 .. s*100+25), diffed
# against the sequential oracle under all four collector rungs.
# Failing scenarios are minimized into stress-failures/fuzz/ and replay
# with `omp_prof fuzz --case <file>`.
echo "== stress: oracle-differential fuzz sweep =="
for seed in "${seeds[@]}"; do
  if ! cargo run -q --release --offline -p ora-bench --bin omp_prof -- \
      fuzz --seeds 25 --start "$((seed * 100))" --out stress-failures/fuzz; then
    echo "stress: fuzz sweep FAILED at block $seed" >&2
    echo "fuzz --seeds 25 --start $((seed * 100))" >> stress-failures/failed-seeds.txt
    status=1
  fi
done

# Nested-team topology sweep: real nested forks (pooled sub-team
# leasing, level/parent chains, leased-worker state visibility) and the
# topology-shaped barrier and hierarchical claimer exercised under
# several injected machine shapes — the 2x4x2 reference box, a
# single-package SMT-less box, and a package-per-core box — plus the
# curated nested-team fuzz cases replayed under each shape.
echo "== stress: nested-team topology sweep =="
for shape in 2x4x2 1x8x1 8x1x1; do
  if ! OMP_ORA_TOPOLOGY="$shape" cargo test -q --offline -p omprt \
      --test nested --test sync_stress; then
    echo "stress: nested/sync tests FAILED under OMP_ORA_TOPOLOGY=$shape" >&2
    echo "OMP_ORA_TOPOLOGY=$shape nested+sync_stress" >> stress-failures/failed-seeds.txt
    status=1
  fi
  for case in tests/fuzz_cases/nested_*.case; do
    if ! OMP_ORA_TOPOLOGY="$shape" cargo run -q --release --offline \
        -p ora-bench --bin omp_prof -- fuzz --case "$case"; then
      echo "stress: $case FAILED under OMP_ORA_TOPOLOGY=$shape" >&2
      echo "OMP_ORA_TOPOLOGY=$shape fuzz --case $case" >> stress-failures/failed-seeds.txt
      status=1
    fi
  done
done

# CLI acceptance scenario: every workload completes with correct
# results while the collector panics and the trace drainer is dead.
echo "== stress: omp_prof suite under full fault injection =="
if ! cargo run --release --offline -p ora-bench --bin omp_prof -- \
    suite --threads 4 --inject-panic-cb --kill-drainer --policy block; then
  echo "stress: fault-injected suite FAILED" >&2
  echo "suite --inject-panic-cb --kill-drainer --policy block" \
    >> stress-failures/failed-seeds.txt
  status=1
fi

# Fleet seed sweep: multi-process NPB-MZ ranks streaming into the
# aggregator daemon, with per-seed fault injection — a random rank
# killed mid-stream on odd seeds, a slow consumer (delayed chunk ACKs,
# so the producers' in-flight windows backpressure) on even seeds. The
# driver itself verifies the online merge byte-identical to offline
# merge_ranks and the per-lane drop/ACK accounting reconciled.
echo "== stress: fleet rank-kill / slow-consumer sweep =="
for seed in "${seeds[@]}"; do
  ranks=$((2 + seed % 3))
  extra=()
  if (( seed % 2 == 1 )); then
    extra+=(--kill-rank $((seed % ranks)))
  else
    extra+=(--slow-us $((seed * 100)))
  fi
  if ! cargo run -q --release --offline -p ora-bench --bin omp_prof -- \
      fleet --ranks "$ranks" --threads 2 --workload lu-mz --class s \
      --out-dir "stress-fleet/seed$seed" "${extra[@]}" > /dev/null; then
    echo "stress: fleet sweep FAILED at seed $seed (ranks $ranks ${extra[*]})" >&2
    echo "fleet --ranks $ranks ${extra[*]}" >> stress-failures/failed-seeds.txt
    status=1
  fi
done
rm -rf stress-fleet

# `health` must report the injected faults (exit 3 = faulted-but-alive)
# and a clean run must stay healthy (exit 0).
echo "== stress: omp_prof health verdicts =="
set +e
cargo run --release --offline -p ora-bench --bin omp_prof -- \
  health --inject-panic-cb --kill-drainer --policy block > /dev/null 2>&1
rc=$?
set -e
if [[ $rc -ne 3 ]]; then
  echo "stress: injected-fault health run exited $rc, expected 3" >&2
  echo "health --inject-panic-cb --kill-drainer" >> stress-failures/failed-seeds.txt
  status=1
fi
set +e
cargo run --release --offline -p ora-bench --bin omp_prof -- health > /dev/null 2>&1
rc=$?
set -e
if [[ $rc -ne 0 ]]; then
  echo "stress: clean health run exited $rc, expected 0" >&2
  echo "health (clean)" >> stress-failures/failed-seeds.txt
  status=1
fi

if [[ $status -ne 0 ]]; then
  echo "stress: FAILURES — seeds recorded in stress-failures/failed-seeds.txt" >&2
  exit 1
fi
rmdir stress-failures 2>/dev/null || true
echo "stress: OK (${#seeds[@]} seed(s) swept)"
