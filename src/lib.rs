//! # omp-profiling — open-source support for the OpenMP Runtime API for Profiling
//!
//! A full-stack Rust reproduction of *"Open Source Software Support for
//! the OpenMP Runtime API for Profiling"* (ICPP 2009): the ORA/collector
//! interface, an OpenMP-style runtime implementing it, PerfSuite-style
//! callstack support, a prototype collector tool, and the paper's entire
//! evaluation harness.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`ora`] (`ora-core`) — the collector API: events, states, the byte
//!   protocol, callback registry, lifecycle state machine;
//! * [`omprt`] — the OpenMP runtime substrate (fork/join, worksharing,
//!   barriers, locks, reductions) with ORA wired into every runtime call;
//! * [`psx`] — callstack capture, symbolization, user-model
//!   reconstruction, and the dynamic-symbol table used for discovery;
//! * [`collector`] — profiler / tracer / state-sampler tools that attach
//!   through the discovered symbol;
//! * [`trace`] (`ora-trace`) — the always-on streaming trace pipeline:
//!   lock-free rings, background drainer, CRC-validated binary format,
//!   and the offline query layer;
//! * [`workloads`] — EPCC syncbench and synthetic NPB / NPB-MZ suites
//!   with the paper's exact parallel-region structure;
//! * [`pomp`] — the POMP-style source-instrumentation baseline the
//!   paper's related work compares ORA against.
//!
//! See `examples/quickstart.rs` for the end-to-end Fig. 3 handshake.

#![warn(missing_docs)]

pub use collector;
pub use omprt;
pub use ora_core as ora;
pub use ora_trace as trace;
pub use pomp;
pub use psx;
pub use workloads;
