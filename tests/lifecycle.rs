//! The paper's Fig. 3 sequence, end to end across all crates: a collector
//! that discovers the runtime, initializes, registers events, queries
//! state and region IDs, pauses/resumes/stops — all through the byte
//! protocol.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use omp_profiling::collector::RuntimeHandle;
use omp_profiling::omprt::OpenMp;
use omp_profiling::ora::{Event, OraError, Request, Response, ThreadState};

#[test]
fn figure_3_interaction_sequence() {
    let rt = OpenMp::with_threads(2);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();

    // 1. Collector initiates communications: OMP_REQ_START.
    assert_eq!(handle.request_one(Request::Start), Ok(Response::Ack));

    // 2. Register fork + join callbacks.
    let forks = Arc::new(AtomicU64::new(0));
    let joins = Arc::new(AtomicU64::new(0));
    {
        let f = forks.clone();
        handle
            .register(
                Event::Fork,
                Arc::new(move |_| {
                    f.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        let j = joins.clone();
        handle
            .register(
                Event::Join,
                Arc::new(move |_| {
                    j.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
    }

    // 3. Query thread state before any region: serial.
    let state = handle.request_one(Request::QueryState).unwrap();
    assert_eq!(state.state(), Some(ThreadState::Serial));

    // 4. Region IDs outside a region: out of sequence.
    assert_eq!(
        handle.request_one(Request::QueryCurrentPrid),
        Err(OraError::OutOfSequence)
    );

    // 5. Application runs; events flow.
    rt.parallel(|_| {});
    rt.parallel(|_| {});
    assert_eq!(forks.load(Ordering::SeqCst), 2);
    assert_eq!(joins.load(Ordering::SeqCst), 2);

    // 6. Pause: generation suspends, states keep tracking.
    handle.request_one(Request::Pause).unwrap();
    rt.parallel(|_| {});
    assert_eq!(forks.load(Ordering::SeqCst), 2);
    assert_eq!(
        handle.request_one(Request::QueryState).unwrap().state(),
        Some(ThreadState::Serial)
    );

    // 7. Resume: generation continues.
    handle.request_one(Request::Resume).unwrap();
    rt.parallel(|_| {});
    assert_eq!(forks.load(Ordering::SeqCst), 3);

    // 8. Stop: de-initialize; registrations cleared; restart is legal.
    handle.request_one(Request::Stop).unwrap();
    rt.parallel(|_| {});
    assert_eq!(forks.load(Ordering::SeqCst), 3);
    assert_eq!(handle.request_one(Request::Start), Ok(Response::Ack));
    rt.parallel(|_| {});
    assert_eq!(forks.load(Ordering::SeqCst), 3, "stop cleared callbacks");
    handle.request_one(Request::Stop).unwrap();
}

#[test]
fn region_ids_inside_regions_via_byte_protocol() {
    let rt = OpenMp::with_threads(2);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
    handle.request_one(Request::Start).unwrap();

    let seen = Arc::new(AtomicU64::new(0));
    let h = handle.clone();
    let s = seen.clone();
    rt.parallel(move |ctx| {
        let cur = h.request_one(Request::QueryCurrentPrid).unwrap();
        let parent = h.request_one(Request::QueryParentPrid).unwrap();
        assert_eq!(cur, Response::RegionId(ctx.region_id()));
        assert_eq!(parent, Response::RegionId(0));
        s.fetch_add(1, Ordering::SeqCst);
    });
    assert_eq!(seen.load(Ordering::SeqCst), 2);
}

#[test]
fn collector_survives_runtime_teardown() {
    // The exported entry captures the collector API, not the runtime:
    // after the runtime drops, an already-resolved handle can still
    // reconcile its final accounting. Phase-independent requests keep
    // answering; requests that need live runtime state fail cleanly.
    let (handle, symbol) = {
        let rt = OpenMp::with_threads(2);
        let symbol = rt.symbol_name().to_string();
        let handle = RuntimeHandle::discover_named(&symbol).unwrap();
        handle.request_one(Request::Start).unwrap();
        rt.parallel(|_| {});
        (handle, symbol)
    }; // rt dropped here

    // The symbol is gone from the table, so no NEW collector resolves...
    assert!(RuntimeHandle::discover_named(&symbol).is_none());
    // ...but the stale handle still gets answers where the paper demands
    // them "at any given point": state (now Unknown — no live runtime),
    // health, the governor snapshot, and the final Stop.
    let state = handle.request_one(Request::QueryState).unwrap();
    assert_eq!(state.state(), Some(ThreadState::Unknown));
    assert!(handle.request_one(Request::QueryHealth).is_ok());
    assert!(handle.query_governor().is_ok());
    assert_eq!(handle.request_one(Request::Stop), Ok(Response::Ack));
    // Region-ID queries need a live team and fail cleanly instead.
    assert!(handle.request_one(Request::QueryCurrentPrid).is_err());
}
