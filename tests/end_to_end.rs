//! Cross-crate end-to-end tests: the paper's experiments at smoke scale.

use omp_profiling::collector::{Mode, RuntimeHandle, Tracer};
use omp_profiling::omprt::OpenMp;
use omp_profiling::workloads::{
    driver, epcc, CollectMode, EpccConfig, MzBenchmark, NpbClass, NpbKernel,
};

#[test]
fn table_1_counts_measured_through_ora() {
    // Structure column is static; the calls column is *measured* by
    // counting fork events with a tracer — the experiment behind Table I.
    for kernel in NpbKernel::all() {
        let rt = OpenMp::with_threads(2);
        let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
        let tracer = Tracer::attach(handle, 16).unwrap();
        kernel.run(&rt, NpbClass::S);
        assert_eq!(
            tracer.region_calls(),
            kernel.region_calls(NpbClass::S),
            "{}",
            kernel.name
        );
        tracer.finish();
    }
}

#[test]
fn table_2_per_process_calls() {
    let expected: [(&str, [u64; 4]); 3] = [
        ("BT-MZ", [167_616, 83_808, 41_904, 20_952]),
        ("LU-MZ", [40_353, 20_177, 10_089, 5_045]),
        ("SP-MZ", [436_672, 218_336, 109_168, 54_584]),
    ];
    for (bench, (name, cols)) in MzBenchmark::all().iter().zip(expected) {
        assert_eq!(bench.name, name);
        for (procs, want) in [1usize, 2, 4, 8].into_iter().zip(cols) {
            assert_eq!(bench.table2_calls(procs), want, "{name} P={procs}");
        }
    }
}

#[test]
fn figure_5_style_overhead_measurement_runs() {
    // EP (3 region calls) must show essentially no collectable surface;
    // its profile has 3 regions and the measurement completes.
    let kernel = NpbKernel::ep();
    let rt = OpenMp::with_threads(2);
    let result = driver::measure_overhead(&rt, 1, Mode::Full, |rt| {
        std::hint::black_box(kernel.run(rt, NpbClass::S));
    })
    .unwrap();
    assert!(result.base_secs > 0.0 && result.collected_secs > 0.0);
}

#[test]
fn figure_6_style_mz_overhead_measurement_runs() {
    let bench = MzBenchmark::lu_mz();
    let base = bench.run(2, 2, NpbClass::S, CollectMode::Off);
    let collected = bench.run(2, 2, NpbClass::S, CollectMode::Profile);
    assert!(base.wall_secs > 0.0);
    assert!(collected.wall_secs > 0.0);
    assert_eq!(
        collected.join_samples,
        collected.per_rank_calls.iter().sum::<u64>()
    );
}

#[test]
fn breakdown_experiment_produces_valid_split() {
    // §V-B at smoke scale: the three-way run completes and the fractions
    // form a valid partition of the overhead.
    let kernel = NpbKernel::lu_hp();
    let rt = OpenMp::with_threads(2);
    let b = driver::measure_breakdown(&rt, 1, |rt| {
        std::hint::black_box(kernel.run(rt, NpbClass::S));
    })
    .unwrap();
    let m = b.measurement_fraction();
    let c = b.communication_fraction();
    assert!((0.0..=1.0).contains(&m));
    assert!((m + c - 1.0).abs() < 1e-9 || (m == 0.0 && c == 0.0));
}

#[test]
fn epcc_suite_runs_with_collection_attached() {
    let rt = OpenMp::with_threads(2);
    let cfg = EpccConfig {
        outer_reps: 1,
        inner_reps: 8,
        delay_len: 16,
    };
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
    let profiler = omp_profiling::collector::Profiler::attach_default(handle).unwrap();
    let results = epcc::run_all(&rt, &cfg);
    assert_eq!(results.len(), 10);
    let profile = profiler.finish();
    // The parallel / parallel-for / reduction directives forked regions
    // the profiler saw.
    assert!(profile.region_count() > 0);
}

#[test]
fn overhead_grows_with_region_call_count() {
    // The paper's central observation: collection overhead tracks the
    // number of parallel-region calls. Compare total collector work
    // (events observed) for EP (3 calls) vs LU (518 calls → 27 at S):
    // the event volume must be ordered accordingly.
    let ep_events = {
        let rt = OpenMp::with_threads(2);
        let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
        let p = omp_profiling::collector::Profiler::attach_default(handle).unwrap();
        NpbKernel::ep().run(&rt, NpbClass::S);
        let profile = p.finish();
        profile.events_observed
    };
    let lu_events = {
        let rt = OpenMp::with_threads(2);
        let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
        let p = omp_profiling::collector::Profiler::attach_default(handle).unwrap();
        NpbKernel::lu().run(&rt, NpbClass::S);
        let profile = p.finish();
        profile.events_observed
    };
    assert!(
        lu_events > ep_events,
        "LU ({lu_events} events) must out-emit EP ({ep_events} events)"
    );
}
