//! Cross-crate integration of the extension features: the tool suite on a
//! real workload, profile diffing across schedule changes, NPB
//! verification, the OMPT adapter over nested parallelism, and trace CSV
//! round-trips through offline analysis.

use omp_profiling::collector::{self, analyze, RuntimeHandle, SuiteConfig, ToolSuite, Trace};
use omp_profiling::omprt::{Config, OpenMp, Schedule};
use omp_profiling::workloads::{npb::Verification, NpbClass, NpbKernel};

fn handle_for(rt: &OpenMp) -> RuntimeHandle {
    RuntimeHandle::discover_named(rt.symbol_name()).unwrap()
}

#[test]
fn suite_on_npb_kernel_reports_consistently() {
    let rt = OpenMp::with_threads(2);
    let kernel = NpbKernel::cg();
    let tool = ToolSuite::attach(handle_for(&rt), SuiteConfig::default()).unwrap();
    kernel.run(&rt, NpbClass::S);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let report = tool.finish();

    let expected_regions = kernel.region_calls(NpbClass::S);
    let profile = report.profile.unwrap();
    assert_eq!(profile.region_count() as u64, expected_regions);

    let trace = report.trace.unwrap();
    assert_eq!(trace.count(ora_core::Event::Fork), expected_regions);

    // The trace round-trips through CSV and offline analysis still finds
    // every region interval.
    let csv = trace.to_csv();
    let parsed = Trace::from_csv(&csv).unwrap();
    let analysis = analyze(&parsed);
    assert_eq!(analysis.regions.len() as u64, expected_regions);
    assert_eq!(analysis.peak_region_concurrency(), 1);
}

#[test]
fn profile_diff_detects_schedule_change() {
    // Profile the same kernel twice under different schedules and diff.
    let profile_with = |schedule: Schedule| {
        let rt = OpenMp::with_config(Config {
            num_threads: 2,
            schedule,
            ..Config::default()
        });
        let p = collector::Profiler::attach_default(handle_for(&rt)).unwrap();
        NpbKernel::ft().run(&rt, NpbClass::S);
        p.finish()
    };
    let before = profile_with(Schedule::StaticEven);
    let after = profile_with(Schedule::Dynamic(4));

    let d = collector::diff(&before, &after);
    // Same region-call structure in both runs: every delta is matched.
    // (Region IDs are per-runtime, both counting from 1.)
    assert_eq!(d.regions.len(), before.regions.len());
    assert!(d.added().is_empty());
    assert!(d.removed().is_empty());
    assert!(d.total_before > 0.0 && d.total_after > 0.0);
    let text = d.render();
    assert!(text.contains("total:"), "{text}");
}

#[test]
fn npb_verification_across_thread_counts() {
    for kernel in [NpbKernel::sp(), NpbKernel::lu()] {
        match kernel.verify(4, NpbClass::S) {
            Verification::Successful { .. } => {}
            other => panic!("{}: {other:?}", kernel.name),
        }
    }
    assert_eq!(
        NpbKernel::lu_hp().verify(4, NpbClass::S),
        Verification::NotApplicable
    );
}

#[test]
fn ompt_adapter_observes_nested_parallelism() {
    use omp_profiling::collector::OmptRecord;
    use std::sync::{Arc, Mutex};

    let rt = OpenMp::with_config(Config {
        num_threads: 2,
        nested: true,
        ..Config::default()
    });
    let log = Arc::new(Mutex::new(Vec::new()));
    let l = log.clone();
    collector::OmptAdapter::attach(
        handle_for(&rt),
        Arc::new(move |r| {
            l.lock().unwrap().push(r);
        }),
    )
    .unwrap();

    rt.parallel(|ctx| {
        if ctx.is_master() {
            rt.parallel_n(2, |_| {});
        }
    });

    let log = log.lock().unwrap();
    let begins: Vec<(u64, u64)> = log
        .iter()
        .filter_map(|r| match r {
            OmptRecord::ParallelBegin {
                parallel_id,
                parent_parallel_id,
            } => Some((*parallel_id, *parent_parallel_id)),
            _ => None,
        })
        .collect();
    assert_eq!(begins.len(), 2);
    assert_eq!(begins[0].1, 0, "outer has no parent");
    assert_eq!(begins[1].1, begins[0].0, "nested parent is the outer id");
}

#[test]
fn selective_profiler_on_lu_hp_slashes_sample_volume() {
    // The §VI plan applied to the paper's worst case: LU-HP has 16 distinct
    // calling contexts but ~1500 region calls at class S.
    let kernel = NpbKernel::lu_hp();
    let rt = OpenMp::with_threads(2);
    let p = collector::SelectiveProfiler::attach(
        handle_for(&rt),
        collector::SelectivePolicy {
            min_region_secs: 0.0,
            max_samples_per_site: 4,
        },
    )
    .unwrap();
    kernel.run(&rt, NpbClass::S);
    let report = p.finish();
    assert_eq!(report.joins, kernel.region_calls(NpbClass::S));
    assert_eq!(report.distinct_sites as usize, kernel.region_count());
    assert!(report.sampled <= 4 * kernel.region_count() as u64);
    assert!(report.savings() > 0.9, "savings {}", report.savings());
}
