//! The full user-model pipeline of §IV-F: implementation-model capture at
//! join events → symbolization → offline reconstruction → call tree, over
//! a program with nested user functions and multiple constructs.

use omp_profiling::collector::{Profiler, RuntimeHandle};
use omp_profiling::omprt::{OpenMp, SourceFunction};
use omp_profiling::psx;

#[test]
fn nested_user_functions_reconstruct_fully() {
    // main → solver() → two parallel constructs; plus a construct directly
    // in main.
    let main_fn = SourceFunction::new("um_main", "app.rs", 1);
    let solver_fn = SourceFunction::new("um_solver", "solver.rs", 10);
    let main_region = main_fn.region("1", 4);
    let sweep = solver_fn.loop_region("sweep", 14);
    let norm = solver_fn.region("norm", 22);

    let rt = OpenMp::with_threads(2);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
    let profiler = Profiler::attach_default(handle).unwrap();

    {
        let _m = main_fn.frame();
        rt.parallel_region(&main_region, |_| {});
        {
            let _s = solver_fn.frame();
            for _ in 0..3 {
                rt.parallel_region(&sweep, |ctx| {
                    ctx.for_each(0, 63, |i| {
                        std::hint::black_box(i);
                    });
                });
            }
            rt.parallel_region(&norm, |_| {});
        }
    }

    let profile = profiler.finish();
    assert_eq!(profile.join_samples, 5);

    let rendered = profile.call_tree.render();
    // One root: um_main.
    assert_eq!(profile.call_tree.root_count(), 1, "{rendered}");
    // The solver frames nest under main; constructs are annotated; no
    // runtime internals leak.
    assert!(rendered.contains("um_main"), "{rendered}");
    assert!(rendered.contains("um_solver"), "{rendered}");
    assert!(rendered.contains("parallel for"), "{rendered}");
    assert!(!rendered.contains("__ompc"), "{rendered}");
    // The sweep construct was sampled three times.
    assert!(rendered.contains("samples=3"), "{rendered}");
}

#[test]
fn worker_side_capture_synthesizes_parents() {
    // Capture from a *worker* thread mid-region: the implementation stack
    // starts at the outlined body, and reconstruction must synthesize the
    // parent chain.
    let func = SourceFunction::new("wm_driver", "w.rs", 1);
    let region = func.region("r", 6);
    let rt = OpenMp::with_threads(2);

    let stacks = std::sync::Mutex::new(Vec::new());
    rt.parallel_region(&region, |ctx| {
        if ctx.thread_num() == 1 {
            stacks.lock().unwrap().push(psx::capture());
        }
    });

    let stacks = stacks.into_inner().unwrap();
    assert_eq!(stacks.len(), 1);
    let user = psx::reconstruct(&stacks[0], psx::SymbolTable::global());
    let names: Vec<&str> = user.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(names, vec!["wm_driver", "wm_driver"]);
    assert_eq!(user[1].construct.as_deref(), Some("parallel"));
}

#[test]
fn call_tree_weights_accumulate_by_construct() {
    let func = SourceFunction::new("wt_driver", "wt.rs", 1);
    let fast = func.region("fast", 3);
    let slow = func.region("slow", 9);
    let rt = OpenMp::with_threads(2);
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
    let profiler = Profiler::attach_default(handle).unwrap();

    {
        let _f = func.frame();
        rt.parallel_region(&fast, |_| {});
        rt.parallel_region(&slow, |_| {
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
    }

    let profile = profiler.finish();
    let tree = &profile.call_tree;
    // The driver's inclusive time covers both constructs and is dominated
    // by the slow one.
    let total = tree.inclusive_of("wt_driver");
    assert!(total >= 0.020, "total {total}");
}
