//! Quickstart: the paper's Fig. 1 program profiled through the paper's
//! Fig. 3 handshake.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A runtime executes `#pragma omp parallel for reduction(+:sum)`; a
//! collector — knowing nothing about the runtime but the exported
//! `__omp_collector_api` symbol — starts collection, registers fork/join
//! callbacks, queries thread state and region IDs, and prints a profile.

use std::sync::Arc;

use omp_profiling::collector::{Profiler, RuntimeHandle};
use omp_profiling::omprt::{OpenMp, SourceFunction};
use omp_profiling::ora::{Event, Request};

fn main() {
    // --- the application & runtime side -----------------------------
    // int main() { #pragma omp parallel for reduction(+:sum) ... }
    let main_fn = SourceFunction::new("main", "quickstart.c", 3);
    let region = main_fn.loop_region("1", 5); // __ompdo_main_1
    let rt = OpenMp::with_threads(4);
    println!("runtime exports symbol: {}", rt.symbol_name());
    println!(
        "owns canonical __omp_collector_api: {}\n",
        rt.owns_canonical_symbol()
    );

    // --- the collector side ------------------------------------------
    // "query the dynamic linker to determine whether the symbol is
    // present" — a real tool would use the canonical name; we use the
    // instance-qualified one so the example is robust inside any process.
    let handle = RuntimeHandle::discover_named(rt.symbol_name())
        .expect("no ORA-capable OpenMP runtime found");

    // Attach the prototype tool (fork/join/implicit-barrier callbacks),
    // plus one raw callback of our own on an event the tool doesn't use,
    // to show the low-level registration path.
    let profiler = Profiler::attach_default(handle.clone()).unwrap();
    handle
        .register(
            Event::ThreadEndIdle,
            Arc::new(|d| {
                println!(
                    "  [collector] worker {} leaves idle for region {}",
                    d.gtid, d.region_id
                );
            }),
        )
        .unwrap();

    // --- run the program ---------------------------------------------
    let n = 1_000_000;
    let sum = {
        let _frame = main_fn.frame();
        rt.parallel_for_sum(&region, 0, n - 1, |_i| 1.0)
    };
    println!("\nsum = {sum} (expected {n})");
    assert_eq!(sum, n as f64);

    // Query the calling thread's state through the byte protocol.
    let state = handle.request_one(Request::QueryState).unwrap();
    println!(
        "master state outside the region: {:?}",
        state.state().unwrap()
    );

    // --- offline profile ----------------------------------------------
    let profile = profiler.finish();
    println!("\n=== profile ===\n{}", profile.render());
}
