//! Profile two NAS kernels with opposite region structure — CG (15
//! regions, moderate call count) and LU-HP (16 regions, the paper's
//! worst-case ~300k calls at full scale) — and show why LU-HP dominates
//! the collection-overhead figure.
//!
//! ```text
//! cargo run --release --example profile_npb [-- --class w]
//! ```

use omp_profiling::collector::{clock, Profiler, RuntimeHandle, StateSampler};
use omp_profiling::omprt::OpenMp;
use omp_profiling::ora::{Event, Request};
use omp_profiling::workloads::{NpbClass, NpbKernel};

fn main() {
    let class = if std::env::args().any(|a| a == "--class" || a == "w") {
        NpbClass::W
    } else {
        NpbClass::S
    };

    for kernel in [NpbKernel::cg(), NpbKernel::lu_hp()] {
        println!("=== {} (class {:?}) ===", kernel.name, class);
        println!(
            "structure: {} regions, {} region calls",
            kernel.region_count(),
            kernel.region_calls(class)
        );

        let rt = OpenMp::with_threads(4);
        let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();

        // Baseline run.
        let (checksum, base_ticks) = clock::time(|| kernel.run(&rt, class));

        // Profiled run, with state sampling at implicit barriers.
        let profiler = Profiler::attach_default(handle.clone()).unwrap();
        let sampler = StateSampler::new(handle.clone());
        sampler.sample_on(&[Event::ThreadBeginExplicitBarrier]).ok();
        let (_, prof_ticks) = clock::time(|| kernel.run(&rt, class));
        let profile = profiler.finish();

        println!("checksum: {checksum:.6}");
        println!(
            "baseline {:.3}s, profiled {:.3}s, overhead {:.1}%",
            clock::to_secs(base_ticks),
            clock::to_secs(prof_ticks),
            (clock::to_secs(prof_ticks) / clock::to_secs(base_ticks) - 1.0) * 100.0
        );
        println!(
            "regions profiled: {}, join callstack samples: {}, events observed: {}",
            profile.region_count(),
            profile.join_samples,
            profile.events_observed
        );

        // The offline user-model view: every region re-attributed to the
        // kernel's driver function and its constructs.
        println!("\nuser-model call tree (top of report):");
        for line in profile.call_tree.render().lines().take(8) {
            println!("  {line}");
        }

        // Where did the threads spend their time?
        let serial = handle.request_one(Request::QueryState).unwrap();
        println!("\nmaster state now: {:?}", serial.state().unwrap());
        println!();
    }
}
