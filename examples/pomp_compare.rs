//! The paper's §II argument, live: the same program monitored through
//! POMP-style source instrumentation and through ORA, side by side.
//!
//! ```text
//! cargo run --release --example pomp_compare
//! ```
//!
//! Shows the three structural differences the paper claims for ORA:
//! 1. no cost in user code when no tool is attached;
//! 2. the runtime's truth (serialized nested regions fire no fork);
//! 3. attribution to runtime region IDs instead of source descriptors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use omp_profiling::collector::{clock, Profiler, RuntimeHandle};
use omp_profiling::omprt::OpenMp;
use omp_profiling::pomp::{self, hooks, ConstructKind, PompMonitor};

fn workload(rt: &OpenMp, pomp_region: Option<u32>) {
    for _ in 0..200 {
        if let Some(r) = pomp_region {
            hooks::pomp_parallel_begin(r, 0);
        }
        rt.parallel(|ctx| {
            let mut x = 0u64;
            ctx.for_each(0, 511, |i| x = x.wrapping_add(i as u64));
            std::hint::black_box(x);
        });
        if let Some(r) = pomp_region {
            hooks::pomp_parallel_end(r, 0);
        }
    }
}

fn main() {
    let region = pomp::register_region(ConstructKind::Parallel, "compare.c", 10, 18);
    let rt = OpenMp::with_threads(2);
    rt.parallel(|_| {}); // warm the pool

    // --- 1. Dormant cost: no tool attached on either side --------------
    let (_, bare) = clock::time(|| workload(&rt, None));
    let (_, pomp_dormant) = clock::time(|| workload(&rt, Some(region)));
    println!("no tool attached:");
    println!(
        "  uninstrumented      {:>9.3} ms",
        clock::to_secs(bare) * 1e3
    );
    println!(
        "  POMP hooks in code  {:>9.3} ms  ({} dormant hook executions so far)",
        clock::to_secs(pomp_dormant) * 1e3,
        pomp::dormant_calls()
    );
    println!("  ORA                 (identical to uninstrumented — nothing in user code)\n");

    // --- 2. Monitored cost ---------------------------------------------
    let monitor = PompMonitor::attach();
    let (_, pomp_on) = clock::time(|| workload(&rt, Some(region)));
    let report = monitor.finish();

    let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
    let profiler = Profiler::attach_default(handle).unwrap();
    let (_, ora_on) = clock::time(|| workload(&rt, None));
    let profile = profiler.finish();

    println!("tool attached:");
    println!(
        "  POMP monitoring     {:>9.3} ms",
        clock::to_secs(pomp_on) * 1e3
    );
    println!(
        "  ORA profiling       {:>9.3} ms",
        clock::to_secs(ora_on) * 1e3
    );
    let pomp_entry = &report[region as usize];
    println!(
        "  POMP saw {} enters of source region {}:{}-{}",
        pomp_entry.enters,
        pomp_entry.descriptor.file,
        pomp_entry.descriptor.begin_line,
        pomp_entry.descriptor.end_line
    );
    println!(
        "  ORA saw {} runtime regions with join callstacks\n",
        profile.region_count()
    );

    // --- 3. The nesting truth ------------------------------------------
    let inner = pomp::register_region(ConstructKind::Parallel, "compare.c", 12, 15);
    let forks = Arc::new(AtomicU64::new(0));
    let api = rt.collector_api();
    api.handle_request(omp_profiling::ora::Request::Start)
        .unwrap();
    let f = forks.clone();
    api.register_callback(
        omp_profiling::ora::Event::Fork,
        Arc::new(move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        }),
    )
    .unwrap();
    let monitor = PompMonitor::attach();
    rt.parallel(|ctx| {
        hooks::pomp_parallel_begin(inner, ctx.thread_num());
        rt.parallel(|_| {}); // serialized by the runtime
        hooks::pomp_parallel_end(inner, ctx.thread_num());
    });
    let report = monitor.finish();
    println!("serialized nested region:");
    println!(
        "  POMP counted {} executions of the nested 'parallel region'",
        report[inner as usize].enters
    );
    println!(
        "  ORA fired {} fork(s) — the runtime's truth: it never forked",
        forks.load(Ordering::SeqCst)
    );
}
