//! The hybrid MPI+OpenMP scenario: run SP-MZ over simulated ranks at two
//! decompositions, with each rank's own runtime profiled by its own
//! collector — the setup behind the paper's Fig. 6 and Table II.
//!
//! ```text
//! cargo run --release --example multizone
//! ```

use omp_profiling::collector::report;
use omp_profiling::workloads::{CollectMode, MzBenchmark, NpbClass};

fn main() {
    let bench = MzBenchmark::sp_mz();
    println!(
        "{}: {} total zone-step region calls (class B-sim), {} zones\n",
        bench.name, bench.total_calls_b, bench.zones
    );

    // Table II row for this benchmark.
    println!(
        "{}",
        report::table(
            &["decomposition", "region calls per process (B-sim)"],
            [1usize, 2, 4, 8].into_iter().map(|p| {
                vec![
                    format!("{} x {}", p, 8 / p),
                    bench.table2_calls(p).to_string(),
                ]
            }),
        )
    );

    // Run at class S for two decompositions, with and without collection.
    for (procs, threads) in [(1, 4), (2, 2)] {
        let base = bench.run(procs, threads, NpbClass::S, CollectMode::Off);
        let prof = bench.run(procs, threads, NpbClass::S, CollectMode::Profile);
        println!(
            "{} x {}: per-rank calls {:?}",
            procs, threads, base.per_rank_calls
        );
        println!(
            "  baseline {:.4}s, profiled {:.4}s ({} join samples across ranks)",
            base.wall_secs, prof.wall_secs, prof.join_samples
        );
        assert_eq!(
            prof.join_samples,
            prof.per_rank_calls.iter().sum::<u64>(),
            "every rank's profiler saw every region"
        );
    }
}
