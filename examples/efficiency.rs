//! A parallel-efficiency report from thread states: how much of each
//! thread's time is useful work vs barriers, waits, idling, and runtime
//! overhead — the analysis the thread-state machinery exists for
//! ("distinguish [when] a thread is doing useful work or executing
//! OpenMP overheads", paper §IV).
//!
//! Runs the same computation twice: once well balanced and once badly
//! imbalanced, and shows the state-time profile exposing the difference.
//!
//! ```text
//! cargo run --release --example efficiency
//! ```

use omp_profiling::collector::{RuntimeHandle, StateTimer};
use omp_profiling::omprt::{OpenMp, Schedule};
use omp_profiling::ora::ThreadState;

fn spin_work(units: u64) -> u64 {
    let mut x = 0u64;
    for i in 0..units * 8_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    x
}

fn run_case(name: &str, schedule: Schedule, skewed: bool) {
    let rt = OpenMp::with_config(omp_profiling::omprt::Config {
        num_threads: 4,
        schedule,
        ..Default::default()
    });
    let handle = RuntimeHandle::discover_named(rt.symbol_name()).unwrap();
    let timer = StateTimer::attach(handle).unwrap();

    for _ in 0..3 {
        rt.parallel(|ctx| {
            let mut acc = 0u64;
            ctx.for_each(0, 63, |i| {
                // Skewed: iteration cost grows with index, so the static
                // schedule lands all the heavy work on the last thread.
                let units = if skewed { 1 + (i as u64) / 4 } else { 8 };
                acc = acc.wrapping_add(spin_work(units));
            });
            std::hint::black_box(acc);
            ctx.implicit_barrier();
        });
    }
    std::thread::sleep(std::time::Duration::from_millis(50));
    let profile = timer.finish();

    println!("=== {name} ===");
    println!("{}", profile.render());
    let work = profile.total_secs(ThreadState::Working);
    let bar = profile.total_secs(ThreadState::ImplicitBarrier)
        + profile.total_secs(ThreadState::ExplicitBarrier);
    println!("aggregate: work {work:.4}s, barrier wait {bar:.4}s\n");
}

fn main() {
    run_case(
        "balanced (static schedule, uniform work)",
        Schedule::StaticEven,
        false,
    );
    run_case(
        "imbalanced (static schedule, skewed work)",
        Schedule::StaticEven,
        true,
    );
    run_case(
        "rebalanced (dynamic schedule, skewed work)",
        Schedule::Dynamic(2),
        true,
    );
    println!(
        "the imbalanced case shows its skew as barrier-wait time; the\n\
         dynamic schedule claws most of it back — all visible purely\n\
         through ORA state queries, no source instrumentation"
    );
}
