//! Build a collector from scratch against the raw byte protocol —
//! no `collector` crate, just the `ora-core` message format and the
//! dynamic-symbol lookup, exactly the position a third-party tool vendor
//! is in. Also demonstrates the protocol's error semantics ("out of sync"
//! on double-start, out-of-sequence region queries).
//!
//! ```text
//! cargo run --release --example custom_collector
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use omp_profiling::omprt::OpenMp;
use omp_profiling::ora::message::RequestBatch;
use omp_profiling::ora::{Event, OraError, Request};

fn main() {
    let rt = OpenMp::with_threads(2);

    // 1. Discovery: resolve the exported entry point by name only.
    let symbol = rt.symbol_name().to_string();
    let entry = omp_profiling::psx::dynsym::lookup(&symbol)
        .expect("runtime must export its collector symbol");
    println!("resolved {symbol}");

    // Callback "function pointers" are interned through the exported API
    // object (the in-process stand-in for passing a pointer in the
    // payload).
    let api = omp_profiling::psx::dynsym::objects::lookup::<omp_profiling::ora::api::CollectorApi>(
        &format!("{symbol}.api"),
    )
    .expect("api object exported");
    let forks = Arc::new(AtomicU64::new(0));
    let f = forks.clone();
    let token = api.intern_callback(Arc::new(move |_| {
        f.fetch_add(1, Ordering::Relaxed);
    }));

    // 2. One byte batch: start + register, like the Fig. 3 sequence.
    let mut batch = RequestBatch::new(&[
        Request::Start,
        Request::Register {
            event: Event::Fork,
            token,
        },
        Request::QueryState,
    ]);
    let served = entry(batch.as_mut_bytes());
    println!("served {served} records");
    for (i, resp) in batch.responses().into_iter().enumerate() {
        println!("  record {i}: {resp:?}");
    }

    // 3. Error semantics: a second Start without a Stop is out of sync...
    let mut again = RequestBatch::new(&[Request::Start]);
    entry(again.as_mut_bytes());
    assert_eq!(again.response(0), Err(OraError::OutOfSequence));
    println!("double start  -> {:?}", again.response(0));

    // ...and a region-ID query outside any region is out of sequence too.
    let mut prid = RequestBatch::new(&[Request::QueryCurrentPrid]);
    entry(prid.as_mut_bytes());
    println!("prid outside  -> {:?}", prid.response(0));

    // 4. Run some regions; our raw callback counts forks.
    for _ in 0..5 {
        rt.parallel(|_| {});
    }
    println!("fork callbacks observed: {}", forks.load(Ordering::Relaxed));
    assert_eq!(forks.load(Ordering::Relaxed), 5);

    // 5. Pause / resume windows.
    let mut pause = RequestBatch::new(&[Request::Pause]);
    entry(pause.as_mut_bytes());
    rt.parallel(|_| {});
    let mut resume = RequestBatch::new(&[Request::Resume]);
    entry(resume.as_mut_bytes());
    rt.parallel(|_| {});
    println!(
        "after pause window: {} (one region was hidden)",
        forks.load(Ordering::Relaxed)
    );
    assert_eq!(forks.load(Ordering::Relaxed), 6);

    // 6. Stop.
    let mut stop = RequestBatch::new(&[Request::Stop]);
    entry(stop.as_mut_bytes());
    println!("stopped");
}
